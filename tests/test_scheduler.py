"""Multi-query scheduler tests: differential correctness + re-entrancy.

The heart of this suite is differential: every SSB query executed
*concurrently* on a shared server must return exactly the same rows as a
solo run through the independent reference executor, at several
concurrency levels and under mixed device configurations.  (SSB
aggregates are sums of integer-valued products, which are exact in
float64, so equality is bitwise — no rounding tolerance is needed or
used.)

The rest pins the re-entrancy fixes the scheduler depends on: per-query
operator-state handles, per-router routing cursors, query-id tagging,
admission-budget conservation, and failure isolation between concurrent
queries.
"""

import numpy as np
import pytest

from repro import EngineServer, ExecutionConfig, Proteus, ResourceBudget
from repro.algebra.expressions import col
from repro.algebra.logical import agg_sum, scan
from repro.algebra.physical import RouterPolicy
from repro.core.router import ConsumerGroup, Router
from repro.engine.reference import ReferenceExecutor
from repro.engine.scheduler import AdmissionError
from repro.hardware.sim import Simulator
from repro.ssb import SSB_QUERY_IDS, generate_ssb, load_ssb, ssb_query
from repro.storage import Column, DataType, Table


@pytest.fixture(scope="module")
def tables():
    return generate_ssb(scale_factor=0.005, seed=13)


@pytest.fixture(scope="module")
def reference(tables):
    ref = ReferenceExecutor(tables)
    return {qid: ref.execute(ssb_query(qid)) for qid in SSB_QUERY_IDS}


def _mixed_config(index: int) -> ExecutionConfig:
    configs = [
        ExecutionConfig.cpu_only(6, block_tuples=4096),
        ExecutionConfig.gpu_only([0, 1], block_tuples=4096),
        ExecutionConfig.hybrid(4, [0, 1], block_tuples=4096),
    ]
    return configs[index % len(configs)]


def _server(tables, **kwargs) -> EngineServer:
    server = EngineServer(segment_rows=2048, **kwargs)
    load_ssb(server.engine, tables=tables)
    return server


class TestDifferentialCorrectness:
    """Concurrent results == solo reference results, bit for bit."""

    @pytest.mark.parametrize("concurrency", [2, 5, 13])
    def test_all_ssb_queries_concurrent_match_reference(
        self, tables, reference, concurrency
    ):
        server = _server(tables, max_concurrent=concurrency)
        sessions = [
            server.submit(ssb_query(qid), _mixed_config(index), name=qid)
            for index, qid in enumerate(SSB_QUERY_IDS)
        ]
        report = server.run()
        assert [s.status for s in sessions] == ["done"] * len(SSB_QUERY_IDS)
        for session in sessions:
            assert sorted(session.result.rows) == sorted(reference[session.name]), (
                f"{session.name} diverged at concurrency {concurrency}"
            )
        # all queries genuinely overlapped: batch finished faster than the
        # sum of individual service times (except at concurrency levels
        # where queueing dominates, overlap still shortens the makespan)
        service = [s.service_seconds for s in sessions]
        assert report.makespan < sum(service)
        server.check_conservation()

    def test_deterministic_for_fixed_seed(self, tables):
        def run_once():
            server = _server(tables, max_concurrent=4)
            sessions = [
                server.submit(ssb_query(qid), _mixed_config(i), name=qid)
                for i, qid in enumerate(SSB_QUERY_IDS[:6])
            ]
            report = server.run()
            return report, sessions

        report_a, sessions_a = run_once()
        report_b, sessions_b = run_once()
        assert report_a.makespan == report_b.makespan
        for a, b in zip(sessions_a, sessions_b):
            assert a.result.rows == b.result.rows
            assert a.latency == b.latency


class TestAdmissionControl:
    def test_budget_caps_concurrent_cores(self, tables):
        budget = ResourceBudget(
            dram_bytes=1e15, hbm_bytes=1e12, pcie_bytes=1e15,
            cpu_cores=8, gpu_units=4,
        )
        server = _server(tables, max_concurrent=16, budget=budget)
        config = ExecutionConfig.cpu_only(4, block_tuples=4096)
        for index in range(5):
            server.submit(ssb_query("Q1.1"), config, name=f"r{index}")
        server.run()
        # at most two 4-core queries ever ran together
        assert budget.peak["cpu_cores"] == 8
        budget.assert_conserved()

    def test_oversized_query_rejected_at_submit(self, tables):
        budget = ResourceBudget(
            dram_bytes=1e15, hbm_bytes=1e12, pcie_bytes=1e15,
            cpu_cores=2, gpu_units=0,
        )
        server = _server(tables, budget=budget)
        with pytest.raises(AdmissionError, match="exceeds server budget"):
            server.submit(
                ssb_query("Q1.1"), ExecutionConfig.cpu_only(4, block_tuples=4096)
            )

    def test_queueing_delay_is_recorded(self, tables):
        server = _server(tables, max_concurrent=1)
        config = ExecutionConfig.cpu_only(4, block_tuples=4096)
        first = server.submit(ssb_query("Q1.1"), config)
        second = server.submit(ssb_query("Q1.1"), config)
        server.run()
        assert first.queue_seconds == 0.0
        assert second.queue_seconds > 0.0
        assert second.admit_time >= first.finish_time

    def test_failure_releases_budget_and_isolates_others(self, tables):
        dup = Table("dup_dim", [
            Column.from_values("dk", DataType.INT64, np.array([1, 1, 2])),
            Column.from_values("dv", DataType.INT64, np.array([7, 8, 9])),
        ])
        server = _server(tables, max_concurrent=4)
        server.register(dup)
        fact = Table("dup_fact", [
            Column.from_values("fk", DataType.INT64, np.arange(1, 100) % 3),
            Column.from_values("fv", DataType.INT64, np.arange(99)),
        ])
        server.register(fact)
        bad_plan = (
            scan("dup_fact", ["fk", "fv"])
            .join(scan("dup_dim", ["dk", "dv"]), probe_key="fk",
                  build_key="dk", payload=["dv"])
            .reduce([agg_sum(col("fv"), "s")])
        )
        # hybrid: the GPU build side stages broadcast blocks, so this
        # failure also exercises the staged-slot reclamation path
        config = ExecutionConfig.hybrid(2, [0], block_tuples=1024)
        bad = server.submit(bad_plan, config, name="bad")
        good = server.submit(ssb_query("Q1.1"),
                             ExecutionConfig.cpu_only(4, block_tuples=4096),
                             name="good")
        server.run()
        assert bad.status == "failed"
        assert bad.error is not None
        assert good.status == "done"
        # staging arenas must be whole again despite the mid-phase death
        assert all(v == 0 for v in
                   server.engine.blocks.unaccounted_blocks().values())
        server.check_conservation()


class TestBudgetArithmetic:
    def test_conservation_is_robust_at_byte_scale(self):
        """Relative tolerances: interleaved float allocate/release at
        realistic (1e11-byte) scales must still conserve exactly."""
        from repro.hardware.costmodel import QueryDemand

        budget = ResourceBudget(
            dram_bytes=2.56e11, hbm_bytes=1.6e10, pcie_bytes=9.6e10,
            cpu_cores=24, gpu_units=4,
        )
        demands = [
            QueryDemand(dram_bytes=1.1e11 / 3, hbm_bytes=1.6e10 / 7,
                        pcie_bytes=3.3e10 / 9, cpu_cores=4, gpu_units=1)
            for _ in range(9)
        ]
        for demand in demands:
            budget.allocate(demand)
        for demand in reversed(demands):
            budget.release(demand)
        assert budget.in_use["dram_bytes"] == 0.0
        budget.assert_conserved()

    def test_unspecified_budget_dimensions_are_unlimited(self, tables):
        """ResourceBudget(cpu_cores=8) must not silently zero the other
        dimensions and reject every query touching them."""
        server = _server(tables, budget=ResourceBudget(cpu_cores=8),
                         max_concurrent=4)
        session = server.submit(
            ssb_query("Q1.1"), ExecutionConfig.hybrid(4, [0, 1],
                                                      block_tuples=4096))
        server.run()
        assert session.status == "done"
        server.budget.assert_conserved()

    def test_engine_kwargs_rejected_with_existing_engine(self, tables):
        """serve()/EngineServer must not silently drop engine options."""
        engine = Proteus(segment_rows=2048)
        with pytest.raises(ValueError, match="no effect"):
            engine.serve(segment_rows=1024)
        with pytest.raises(ValueError, match="no effect"):
            EngineServer(engine=engine, pipeline_cache_capacity=None)
        # scheduler options still work with an existing engine
        server = engine.serve(max_concurrent=2)
        assert server.max_concurrent == 2

    def test_latencies_keyed_uniquely_despite_duplicate_names(self, tables):
        server = _server(tables, max_concurrent=2)
        config = ExecutionConfig.cpu_only(3, block_tuples=4096)
        server.submit(ssb_query("Q1.1"), config, name="same")
        server.submit(ssb_query("Q1.2"), config, name="same")
        report = server.run()
        assert len(report.latencies) == 2
        assert report.mean_latency > 0.0


class TestClosedLoopClients:
    def test_dead_client_is_surfaced_not_swallowed(self, tables):
        """A client whose later submission is rejected must fail the run
        loudly — its remaining queries were never submitted."""
        from repro.engine.scheduler import SchedulerError

        budget = ResourceBudget(
            dram_bytes=1e15, hbm_bytes=1e12, pcie_bytes=1e15,
            cpu_cores=4, gpu_units=0,
        )
        server = _server(tables, max_concurrent=4, budget=budget)
        small = ExecutionConfig.cpu_only(2, block_tuples=4096)
        plans = [ssb_query("Q1.1"), ssb_query("Q1.2"), ssb_query("Q1.3")]

        def greedy_client():
            # first query fits; the second asks for more cores than the
            # budget will ever have -> AdmissionError inside the client
            session = server.submit(plans[0], small, name="greedy-0")
            yield session.done
            server.submit(plans[1],
                          ExecutionConfig.cpu_only(8, block_tuples=4096),
                          name="greedy-1")

        proc = server.sim.process(greedy_client(), name="client:greedy")
        server._clients.append(proc)
        with pytest.raises(SchedulerError, match="died mid-loop"):
            server.run()
        # the aborted drive consumed its sessions: the next drive's
        # report must not be skewed by them
        assert server.last_report is not None
        assert len(server.last_report.completed) == 1
        fresh = server.submit(ssb_query("Q1.3"), small, name="fresh")
        report = server.run()
        assert [s.name for s in report.sessions] == ["fresh"]
        assert report.makespan == fresh.latency
        server.check_conservation()

    def test_clients_resubmit_after_completion(self, tables):
        server = _server(tables, max_concurrent=4)
        plans = [ssb_query("Q1.1"), ssb_query("Q1.2"), ssb_query("Q1.3")]
        config = ExecutionConfig.cpu_only(3, block_tuples=4096)
        server.spawn_client(plans, config, think_seconds=0.005, name="alice")
        server.spawn_client(plans, config, think_seconds=0.0, name="bob")
        report = server.run()
        assert len(report.completed) == 6
        # closed loop: a client's queries never overlap with themselves
        by_client = {}
        for session in report.sessions:
            by_client.setdefault(session.name.split("-")[0], []).append(session)
        for sessions in by_client.values():
            ordered = sorted(sessions, key=lambda s: s.submit_time)
            for earlier, later in zip(ordered, ordered[1:]):
                assert later.submit_time >= earlier.finish_time


class TestWarmServerLatency:
    def test_concurrent_identical_queries_both_pay_compilation(self, tables):
        """A pipeline becomes cache-visible only after its simulated
        compile latency: two identical queries admitted together on a
        cold server must BOTH pay compilation — the second cannot finish
        before the first's compilation would even have completed."""
        from repro.engine.scheduler import DEFAULT_COMPILE_SECONDS

        server = _server(tables, max_concurrent=2)
        config = ExecutionConfig.cpu_only(3, block_tuples=4096)
        a = server.submit(ssb_query("Q1.1"), config, name="a")
        b = server.submit(ssb_query("Q1.1"), config, name="b")
        server.run()
        assert a.compiled_fresh == b.compiled_fresh > 0
        compile_charge = a.compiled_fresh * DEFAULT_COMPILE_SECONDS
        assert a.latency >= compile_charge
        assert b.latency >= compile_charge

    def test_reports_cover_only_their_own_drive(self, tables):
        server = _server(tables, max_concurrent=2)
        config = ExecutionConfig.cpu_only(3, block_tuples=4096)
        server.submit(ssb_query("Q1.1"), config)
        first = server.run()
        server.submit(ssb_query("Q1.2"), config)
        second = server.run()
        assert len(first.sessions) == 1 and len(second.sessions) == 1
        assert first.sessions[0].query_id != second.sessions[0].query_id
        # second drive's makespan is exactly its own session's span, not
        # the server's lifetime
        assert second.makespan == second.sessions[0].latency

    def test_repeated_query_skips_compilation(self, tables):
        server = _server(tables, max_concurrent=1)
        config = ExecutionConfig.cpu_only(4, block_tuples=4096)
        cold = server.submit(ssb_query("Q2.1"), config, name="cold")
        server.run()
        warm = server.submit(ssb_query("Q2.1"), config, name="warm")
        server.run()
        assert cold.compiled_fresh > 0
        assert warm.compiled_fresh == 0
        assert warm.latency < cold.latency
        assert warm.result.rows == cold.result.rows

    def test_gpu_pipelines_charge_more_compile_latency(self, tables):
        """The per-device compile-cost model: the same query compiled
        for the GPUs pays ~5-10x the per-pipeline latency of its
        CPU-only shape — no longer one flat constant per miss."""
        from repro.engine.scheduler import DEFAULT_COMPILE_SECONDS

        server = _server(tables, max_concurrent=1)
        cpu = server.submit(
            ssb_query("Q1.1"), ExecutionConfig.cpu_only(3, block_tuples=4096),
            name="cpu")
        server.run()
        gpu = server.submit(
            ssb_query("Q1.1"), ExecutionConfig.gpu_only([0, 1],
                                                        block_tuples=4096),
            name="gpu")
        server.run()
        assert cpu.compiled_fresh > 0 and gpu.compiled_fresh > 0
        cpu_per_stage = cpu.compile_seconds_charged / cpu.compiled_fresh
        gpu_per_stage = gpu.compile_seconds_charged / gpu.compiled_fresh
        assert 5.0 <= gpu_per_stage / cpu_per_stage <= 10.0
        # the charge is real simulated time, and at least the old flat
        # constant per fresh pipeline (the base anchors the minimum)
        assert gpu.latency >= gpu.compile_seconds_charged
        assert cpu.compile_seconds_charged >= \
            cpu.compiled_fresh * DEFAULT_COMPILE_SECONDS

    def test_batch_report_carries_per_tier_cache_stats(self, tables):
        """The per-batch cache report describes residency: lookups,
        size/capacity and the hottest entries, not just hit/miss."""
        server = _server(tables, max_concurrent=2)
        config = ExecutionConfig.cpu_only(3, block_tuples=4096)
        server.submit(ssb_query("Q1.1"), config)
        server.submit(ssb_query("Q1.1"), config)
        report = server.run()
        cache = report.cache
        assert cache["lookups"] == cache["hits"] + cache["misses"]
        assert cache["size"] > 0 and cache["capacity"] > 0
        assert isinstance(cache["top_entries"], list)
        assert report.recompile_seconds > 0
        assert "recompile cost" in report.summary()


class TestReentrancyRegressions:
    """Pin the fixes that made phase networks re-entrant."""

    def test_interleaved_queries_share_one_simulator(self, tables):
        """Two execute_process generators interleave on one sim and both
        finish with correct, independent state (the old executor kept
        operator-state handles on the *instance*, so one query's cleanup
        freed the other's hash tables)."""
        engine = Proteus(segment_rows=2048)
        load_ssb(engine, tables=tables)
        config = ExecutionConfig.cpu_only(4, block_tuples=4096)
        results = {}

        def run(tag, qid):
            het = engine.placer.place(ssb_query(qid), config)
            raw = yield from engine.executor.execute_process(
                het, config, query_id=tag
            )
            results[tag] = engine._collect(het.collect, raw)

        engine.sim.process(run("qa", "Q1.1"), name="qa")
        engine.sim.process(run("qb", "Q2.1"), name="qb")
        engine.sim.run()
        reference = ReferenceExecutor(tables)
        assert sorted(results["qa"].rows) == sorted(
            reference.execute(ssb_query("Q1.1")))
        assert sorted(results["qb"].rows) == sorted(
            reference.execute(ssb_query("Q2.1")))
        for manager in engine.executor.memory_managers.values():
            assert manager.live_handles == 0

    def test_router_cursors_are_per_instance(self):
        """Round-robin position must be private, inspectable state: two
        routers never share a cursor, and a fresh router always starts at
        target 0 (the old itertools.cycle cursors were opaque and, when
        the cursor range diverged from the target count, skewed)."""
        sim = Simulator()
        from repro.algebra.physical import (
            OpPackSink, SegmentSource, Stage,
        )
        from repro.hardware.topology import DeviceType

        def stage(name, dop):
            return Stage(name=name, device=DeviceType.CPU,
                         ops=[OpPackSink(["x"])],
                         source=SegmentSource("t", ["x"]), dop=dop)

        producer = stage("prod", 1)
        groups_a = [ConsumerGroup(stage("a1", 3), ["cpu:0"] * 3),
                    ConsumerGroup(stage("a2", 2), ["cpu:1"] * 2)]
        groups_b = [ConsumerGroup(stage("b1", 2), ["cpu:0"] * 2)]
        router_a = Router(sim, producer, groups_a, RouterPolicy.ROUND_ROBIN)
        router_b = Router(sim, producer, groups_b, RouterPolicy.ROUND_ROBIN)
        assert router_a._rr_index == 0 and router_b._rr_index == 0
        # advancing one router's cursor must not move the other's
        for _ in range(3):
            router_a._select(None)
        assert router_a._rr_index == 3
        assert router_b._rr_index == 0
        # uniform coverage: 10 selections over 5 targets = exactly 2 each
        counts = {}
        router = Router(sim, producer,
                        [ConsumerGroup(stage("c1", 3), ["cpu:0"] * 3),
                         ConsumerGroup(stage("c2", 2), ["cpu:1"] * 2)],
                        RouterPolicy.ROUND_ROBIN)
        for _ in range(10):
            group, instance = router._select(None)
            counts[(id(group), instance)] = counts.get((id(group), instance), 0) + 1
        assert sorted(counts.values()) == [2] * 5

    def test_consumer_groups_do_not_share_queue_lists(self):
        """Guard against mutable-default sharing across ConsumerGroups."""
        from repro.algebra.physical import OpPackSink, SegmentSource, Stage
        from repro.hardware.topology import DeviceType

        stage = Stage(name="s", device=DeviceType.CPU, ops=[OpPackSink(["x"])],
                      source=SegmentSource("t", ["x"]), dop=2)
        one = ConsumerGroup(stage, ["cpu:0", "cpu:1"])
        two = ConsumerGroup(stage, ["cpu:0", "cpu:1"])
        assert one.instance_queues is not two.instance_queues
        assert one.instance_assigned is not two.instance_assigned
        one.instance_queues.append("sentinel")
        assert two.instance_queues == []

    def test_routers_are_tagged_with_query_ids(self):
        sim = Simulator()
        from repro.algebra.physical import OpPackSink, SegmentSource, Stage
        from repro.hardware.topology import DeviceType

        stage = Stage(name="probe", device=DeviceType.CPU,
                      ops=[OpPackSink(["x"])],
                      source=SegmentSource("t", ["x"]), dop=1)
        router = Router(sim, stage, [ConsumerGroup(stage, ["cpu:0"])],
                        RouterPolicy.UNION, query_id="q7")
        assert router.query_id == "q7"
        assert router.name.startswith("q7:")

    def test_state_handles_freed_after_failed_query(self, tables):
        """A failing query must release exactly its own state; the next
        query on the same executor starts clean."""
        engine = Proteus(segment_rows=2048)
        load_ssb(engine, tables=tables)
        dup = Table("dup_dim2", [
            Column.from_values("dk", DataType.INT64, np.array([5, 5])),
            Column.from_values("dv", DataType.INT64, np.array([1, 2])),
        ])
        engine.register(dup)
        fact = Table("f2", [
            Column.from_values("fk", DataType.INT64, np.arange(20) % 6),
            Column.from_values("fv", DataType.INT64, np.arange(20)),
        ])
        engine.register(fact)
        bad = (
            scan("f2", ["fk", "fv"])
            .join(scan("dup_dim2", ["dk", "dv"]), probe_key="fk",
                  build_key="dk", payload=["dv"])
            .reduce([agg_sum(col("fv"), "s")])
        )
        config = ExecutionConfig.cpu_only(2, block_tuples=1024)
        from repro.engine.executor import QueryError

        with pytest.raises(QueryError):
            engine.query(bad, config)
        for manager in engine.executor.memory_managers.values():
            assert manager.live_handles == 0
        result = engine.query(ssb_query("Q1.1"),
                              ExecutionConfig.cpu_only(4, block_tuples=4096))
        reference = ReferenceExecutor(tables)
        assert sorted(result.rows) == sorted(reference.execute(ssb_query("Q1.1")))


class TestDemoScript:
    def test_multiquery_demo_smoke(self):
        import importlib.util
        import os

        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples", "multiquery_demo.py")
        spec = importlib.util.spec_from_file_location("multiquery_demo", path)
        demo = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(demo)
        out = demo.main(physical_sf=0.002, verbose=False)
        assert len(out["concurrent"].completed) == len(demo.BATCH_QUERIES)
        assert len(out["serial"].completed) == len(demo.BATCH_QUERIES)
        assert out["speedup"] > 1.0
