"""Unit and property tests for the expression layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.expressions import (
    Comparison,
    Literal,
    UnboundStringComparison,
    bind_strings,
    col,
)
from repro.storage.column import StringDictionary


def _env(**arrays):
    return {k: np.asarray(v) for k, v in arrays.items()}


class TestEvaluation:
    def test_arithmetic(self):
        expr = (col("a") + 1) * col("b") - 2
        env = _env(a=[1, 2], b=[10, 20])
        assert list(expr.evaluate(env)) == [18, 58]

    def test_comparisons(self):
        env = _env(x=[1, 5, 9])
        assert list((col("x") < 5).evaluate(env)) == [True, False, False]
        assert list((col("x") >= 5).evaluate(env)) == [False, True, True]
        assert list((col("x") == 5).evaluate(env)) == [False, True, False]
        assert list((col("x") != 5).evaluate(env)) == [True, False, True]

    def test_boolean_combinators(self):
        env = _env(x=[1, 5, 9])
        expr = (col("x") > 1) & (col("x") < 9)
        assert list(expr.evaluate(env)) == [False, True, False]
        expr = (col("x") == 1) | (col("x") == 9)
        assert list(expr.evaluate(env)) == [True, False, True]
        assert list((~(col("x") == 5)).evaluate(env)) == [True, False, True]

    def test_between_is_inclusive(self):
        env = _env(x=[1, 2, 3, 4])
        assert list(col("x").between(2, 3).evaluate(env)) == [False, True, True, False]

    def test_isin(self):
        env = _env(x=[1, 2, 3])
        assert list(col("x").isin([1, 3]).evaluate(env)) == [True, False, True]
        with pytest.raises(ValueError):
            col("x").isin([])

    def test_missing_column_raises_helpfully(self):
        with pytest.raises(KeyError, match="not in scope"):
            col("nope").evaluate(_env(x=[1]))

    def test_expressions_are_not_truthy(self):
        with pytest.raises(TypeError, match="not truthy"):
            bool(col("a") == 1)

    def test_columns_set(self):
        expr = (col("a") + col("b")).between(col("c"), 5)
        assert expr.columns() == {"a", "b", "c"}


class TestSourceGeneration:
    def test_source_matches_evaluation(self):
        expr = ((col("a") * 2 + col("b")) > 10) & ~(col("b") == 3)
        env = _env(a=np.arange(8), b=np.arange(8)[::-1].copy())
        source = expr.source(lambda name: f"c_{name}")
        namespace = {"c_a": env["a"], "c_b": env["b"], "np": np}
        assert np.array_equal(eval(source, namespace), expr.evaluate(env))

    def test_unbound_string_literal_rejected_in_source(self):
        expr = col("s") == "hello"
        with pytest.raises(UnboundStringComparison):
            expr.source(lambda n: n)

    def test_unbound_string_literal_rejected_in_eval(self):
        with pytest.raises(UnboundStringComparison):
            (col("s") == "hello").evaluate(_env(s=[0]))


class TestOpCounts:
    def test_filter_counts(self):
        counts = (col("a").between(1, 3) & (col("b") < 5)).op_counts()
        assert counts.predicates == 3
        assert counts.arithmetic == 0

    def test_arith_counts(self):
        counts = ((col("a") + 1) * col("b")).op_counts()
        assert counts.arithmetic == 2

    def test_isin_counts_one_per_member(self):
        assert col("a").isin([1, 2, 3]).op_counts().predicates == 3


class TestStringBinding:
    WORDS = ["apple", "banana", "cherry", "damson", "elder"]

    def _resolver(self):
        dictionary = StringDictionary(self.WORDS)

        def resolver(name):
            return dictionary if name == "s" else None

        return dictionary, resolver

    def _codes(self):
        dictionary, _ = self._resolver()
        return np.array([dictionary.encode(w) for w in self.WORDS])

    def test_equality_binds_to_code(self):
        dictionary, resolver = self._resolver()
        bound = bind_strings(col("s") == "cherry", resolver)
        mask = bound.evaluate(_env(s=self._codes()))
        assert list(mask) == [w == "cherry" for w in self.WORDS]

    def test_equality_with_absent_value_is_false(self):
        _, resolver = self._resolver()
        bound = bind_strings(col("s") == "zzz", resolver)
        value = bound.evaluate(_env(s=self._codes()))
        assert not np.any(value)

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">="])
    @pytest.mark.parametrize("pivot", ["banana", "bzzz", "a", "zzzz"])
    def test_inequalities_match_string_semantics(self, op, pivot):
        _, resolver = self._resolver()
        expr = Comparison(op, col("s"), Literal(pivot))
        bound = bind_strings(expr, resolver)
        mask = bound.evaluate(_env(s=self._codes()))
        expected = [eval(f"w {op} pivot", {"w": w, "pivot": pivot})
                    for w in self.WORDS]
        assert list(mask) == expected

    def test_flipped_comparison_normalised(self):
        _, resolver = self._resolver()
        bound = bind_strings(Comparison("<", Literal("cherry"), col("s")), resolver)
        mask = bound.evaluate(_env(s=self._codes()))
        assert list(mask) == [w > "cherry" for w in self.WORDS]

    def test_between_matches_string_semantics(self):
        _, resolver = self._resolver()
        bound = bind_strings(col("s").between("banana", "damson"), resolver)
        mask = bound.evaluate(_env(s=self._codes()))
        assert list(mask) == ["banana" <= w <= "damson" for w in self.WORDS]

    def test_between_with_absent_bounds(self):
        _, resolver = self._resolver()
        bound = bind_strings(col("s").between("ba", "cz"), resolver)
        mask = bound.evaluate(_env(s=self._codes()))
        assert list(mask) == ["ba" <= w <= "cz" for w in self.WORDS]

    def test_isin_drops_absent_members(self):
        _, resolver = self._resolver()
        bound = bind_strings(col("s").isin(["apple", "zzz", "elder"]), resolver)
        mask = bound.evaluate(_env(s=self._codes()))
        assert list(mask) == [w in ("apple", "elder") for w in self.WORDS]

    def test_isin_all_absent_is_false(self):
        _, resolver = self._resolver()
        bound = bind_strings(col("s").isin(["zzz"]), resolver)
        assert bound.evaluate(_env(s=self._codes())) is False

    def test_non_string_parts_untouched(self):
        _, resolver = self._resolver()
        expr = (col("n") > 3) & (col("s") == "apple")
        bound = bind_strings(expr, resolver)
        env = _env(n=np.array([1, 10, 10, 1, 10]), s=self._codes())
        assert list(bound.evaluate(env)) == [False, False, False, False, False]


@settings(max_examples=60, deadline=None)
@given(
    words=st.lists(st.text(alphabet="abcdef", min_size=1, max_size=5),
                   min_size=1, max_size=20),
    pivot=st.text(alphabet="abcdef", min_size=1, max_size=5),
    op=st.sampled_from(["<", "<=", ">", ">=", "=="]),
)
def test_string_binding_oracle(words, pivot, op):
    """Bound integer predicates agree with Python string comparison."""
    dictionary = StringDictionary(words)
    codes = dictionary.encode_array(words)
    bound = bind_strings(Comparison(op, col("s"), Literal(pivot)),
                         lambda n: dictionary)
    mask = bound.evaluate({"s": codes})
    if isinstance(mask, bool):
        mask = [mask] * len(words)
    expected = [eval(f"w {op} p", {"w": w, "p": pivot}) for w in words]
    assert list(mask) == expected
