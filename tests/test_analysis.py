"""Engine invariant analyzer tests.

Each checker gets fixture-tree positives *and* negatives (the compliant
engine idioms must stay legal), plus suppression and baseline round
trips, CLI exit-code contracts, and a self-scan asserting the repo's
own ``src/`` + ``benchmarks/`` trees carry zero unbaselined findings —
the same gate CI enforces.
"""

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    all_checkers,
    analyze_paths,
    load_baseline,
    main,
    write_baseline,
)
from repro.analysis.baseline import DEFAULT_BASELINE_NAME, BaselineError
from repro.analysis.runner import PARSE_RULE
from repro.analysis.suppress import is_suppressed, noqa_lines

REPO_ROOT = Path(__file__).resolve().parents[1]

ENGINE = "src/repro/engine/mod.py"
CORE = "src/repro/core/mod.py"
HARDWARE = "src/repro/hardware/mod.py"
BENCH = "benchmarks/bench.py"


def project(tmp_path, files):
    """Write a fixture tree (with a root marker) and return its root."""
    (tmp_path / "pyproject.toml").write_text("# fixture root marker\n")
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def scan(root):
    return analyze_paths([root], root=root)


def by_rule(result, rule_id):
    return [f for f in result.findings if f.rule_id == rule_id]


def test_registry_exposes_all_seven_rules():
    ids = [checker.rule_id for checker in all_checkers()]
    assert ids == [
        "RP001", "RP002", "RP003", "RP004", "RP005", "RP006", "RP007",
    ]


def test_unparsable_file_reports_rp000(tmp_path):
    root = project(tmp_path, {ENGINE: "def broken(:\n"})
    result = scan(root)
    assert [f.rule_id for f in result.findings] == [PARSE_RULE]
    assert result.checked_files == 0


class TestRP001Determinism:
    def test_wall_clock_in_engine_tree(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                import time
                import datetime

                def run(sim):
                    start = time.time()
                    stamp = datetime.datetime.now()
                    return start, stamp
                """
            },
        )
        found = by_rule(scan(root), "RP001")
        assert len(found) == 2
        assert "time.time" in found[0].message
        assert found[0].line == 5

    def test_wall_clock_legal_outside_engine_tree(self, tmp_path):
        root = project(
            tmp_path,
            {
                BENCH: """\
                import time

                def measure(fn):
                    start = time.perf_counter()
                    fn()
                    return time.perf_counter() - start
                """
            },
        )
        assert by_rule(scan(root), "RP001") == []

    def test_unseeded_randomness_flagged_everywhere(self, tmp_path):
        root = project(
            tmp_path,
            {
                BENCH: """\
                import random
                import numpy as np

                def jitter(xs):
                    random.shuffle(xs)
                    rng = random.Random()
                    fresh = np.random.default_rng()
                    return rng, fresh, np.random.rand(3)
                """
            },
        )
        found = by_rule(scan(root), "RP001")
        assert len(found) == 4

    def test_seeded_generators_are_legal(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                import random
                import numpy as np

                def draws(seed):
                    rng = random.Random(seed)
                    gen = np.random.default_rng(seed)
                    return rng.random(), gen.normal()
                """
            },
        )
        assert by_rule(scan(root), "RP001") == []


class TestRP002BudgetDiscipline:
    LEAK = """\
    class Admission:
        def admit(self, session, demand):
            self.budget.allocate(demand)
            session.start()
    """

    def test_acquire_without_release_is_flagged(self, tmp_path):
        root = project(tmp_path, {ENGINE: self.LEAK})
        found = by_rule(scan(root), "RP002")
        assert len(found) == 1
        assert "self.budget.allocate" in found[0].message

    def test_out_of_engine_tree_is_out_of_scope(self, tmp_path):
        root = project(tmp_path, {BENCH: self.LEAK})
        assert by_rule(scan(root), "RP002") == []

    def test_recording_the_hold_is_compliant(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                class Admission:
                    def admit(self, session, demand):
                        self.budget.allocate(demand)
                        session.holds_budget = True
                        session.held_demand = demand
                """
            },
        )
        assert by_rule(scan(root), "RP002") == []

    def test_release_in_finally_is_compliant(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                class Admission:
                    def run_once(self, demand):
                        self.budget.allocate(demand)
                        try:
                            self.step()
                        finally:
                            self.budget.release(demand)
                """
            },
        )
        assert by_rule(scan(root), "RP002") == []

    def test_non_budget_receivers_ignored(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                class Worker:
                    def grab(self):
                        self.lock.acquire()
                """
            },
        )
        assert by_rule(scan(root), "RP002") == []


class TestRP003DesProcess:
    def test_blocking_call_in_generator(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                import time

                def proc(sim):
                    time.sleep(0.1)
                    yield sim.timeout(1)
                """
            },
        )
        found = by_rule(scan(root), "RP003")
        assert len(found) == 1
        assert "time.sleep" in found[0].message

    def test_blocking_call_in_plain_function_not_in_scope(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                import time

                def warmup():
                    time.sleep(0.1)
                """
            },
        )
        assert by_rule(scan(root), "RP003") == []

    def test_return_holding_staged_credits(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                def mover(sim, staging):
                    staging.await_credit()
                    yield sim.timeout(1)
                    return None
                """
            },
        )
        found = by_rule(scan(root), "RP003")
        assert len(found) == 1
        assert "staged credits" in found[0].message

    def test_release_before_return_is_compliant(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                def mover(sim, staging):
                    staging.await_credit()
                    yield sim.timeout(1)
                    staging.release_staged(0)
                    return
                """
            },
        )
        assert by_rule(scan(root), "RP003") == []

    def test_finally_guarded_return_is_compliant(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                def mover(sim, staging):
                    staging.await_credit()
                    try:
                        yield sim.timeout(1)
                        return
                    finally:
                        staging.abort_outstanding()
                """
            },
        )
        assert by_rule(scan(root), "RP003") == []

    def test_return_before_acquire_is_compliant(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                def mover(sim, staging):
                    if sim.idle:
                        return
                    staging.await_credit()
                    yield sim.timeout(1)
                """
            },
        )
        assert by_rule(scan(root), "RP003") == []


class TestRP004ExceptionDiscipline:
    SWALLOW = """\
    def drive(session):
        try:
            session.step()
        except Exception:
            pass

    def drain(queue):
        try:
            return queue.pop()
        except:
            return None
    """

    def test_swallowing_blanket_handlers_flagged(self, tmp_path):
        root = project(tmp_path, {CORE: self.SWALLOW})
        found = by_rule(scan(root), "RP004")
        assert len(found) == 2
        assert "except Exception" in found[0].message
        assert "bare except:" in found[1].message

    def test_scope_is_engine_and_core_only(self, tmp_path):
        root = project(tmp_path, {HARDWARE: self.SWALLOW})
        assert by_rule(scan(root), "RP004") == []

    def test_compliant_handlers(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                def ok_reraise(session):
                    try:
                        session.step()
                    except Exception:
                        raise

                def ok_classify(session):
                    try:
                        session.step()
                    except Exception as error:
                        session.outcome = classify_failure(error)

                def ok_forward(done, work):
                    try:
                        work()
                    except Exception as error:
                        done.fail(error)

                def ok_narrow(queue):
                    try:
                        return queue.pop()
                    except IndexError:
                        return None
                """
            },
        )
        assert by_rule(scan(root), "RP004") == []


class TestRP005MetricsSchema:
    FIXTURE = {
        "tests/test_metrics.py": """\
        EXPECTED_FAMILIES = {
            "repro_jobs_total",
            "repro_ghost_total",
        }
        """,
        "src/repro/engine/dup.py": """\
        class Dup:
            def __init__(self, registry):
                self.jobs = registry.gauge("repro_jobs_total", "again")
        """,
        "src/repro/engine/surface.py": """\
        class Surface:
            def __init__(self, registry):
                self.jobs = registry.counter(
                    "repro_jobs_total", "jobs", labels=("tenant",)
                )
                self.spare = registry.counter("repro_spare_total", "x")

            def feed(self, tenant):
                self.jobs.inc(tenant=tenant)

            def feed_bad(self):
                self.jobs.inc(queue="q0")
        """,
    }

    def test_schema_violations(self, tmp_path):
        root = project(tmp_path, dict(self.FIXTURE))
        found = by_rule(scan(root), "RP005")
        messages = [f.message for f in found]
        assert len(found) == 4
        assert any("re-registered" in m or "more than once" in m for m in messages)
        assert any("passes" in m and "'queue'" in m for m in messages)
        assert any("repro_spare_total" in m and "pinned" in m for m in messages)
        assert any("repro_ghost_total" in m and "no longer" in m for m in messages)

    def test_pin_drift_anchors_at_pin_file(self, tmp_path):
        root = project(tmp_path, dict(self.FIXTURE))
        found = by_rule(scan(root), "RP005")
        ghost = [f for f in found if "repro_ghost_total" in f.message]
        assert ghost[0].path == "tests/test_metrics.py"

    def test_consistent_schema_is_clean(self, tmp_path):
        root = project(
            tmp_path,
            {
                "tests/test_metrics.py": """\
                EXPECTED_FAMILIES = {"repro_jobs_total"}
                """,
                "src/repro/engine/surface.py": """\
                class Surface:
                    def __init__(self, registry):
                        self.jobs = registry.counter(
                            "repro_jobs_total", "jobs", labels=("tenant",)
                        )

                    def feed(self, tenant):
                        self.jobs.inc(tenant=tenant)
                """,
            },
        )
        assert by_rule(scan(root), "RP005") == []


class TestRP006ConfigHygiene:
    def test_mutable_defaults_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                BENCH: """\
                from dataclasses import dataclass, field

                def make(xs=[], mapping=None, *, tags={}, opts=dict()):
                    return xs, mapping, tags, opts

                @dataclass
                class Config:
                    names: list = field(default=[])
                """
            },
        )
        found = by_rule(scan(root), "RP006")
        assert len(found) == 4
        assert any("Config.names" in f.message for f in found)

    def test_immutable_and_factory_defaults_are_clean(self, tmp_path):
        root = project(
            tmp_path,
            {
                BENCH: """\
                from dataclasses import dataclass, field

                def make(xs=None, pair=(), label="x"):
                    return xs, pair, label

                @dataclass
                class Config:
                    names: list = field(default_factory=list)
                    safe: tuple = ()
                """
            },
        )
        assert by_rule(scan(root), "RP006") == []


class TestRP007FailoverDiscipline:
    def test_discarded_hop_handle_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                def dispatch(chain, replica):
                    chain.begin_attempt(replica)
                    chain.resolve(0, "ok")
                    chain.resolve(0, "server_lost")
                """
            },
        )
        found = by_rule(scan(root), "RP007")
        assert len(found) == 1
        assert "discarded" in found[0].message
        assert found[0].line == 2

    def test_local_hop_without_failure_path_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                def dispatch(chain, server, plan):
                    hop = chain.begin_attempt(server.name)
                    result = server.run(plan)
                    chain.resolve(hop, "ok")
                    return result
                """
            },
        )
        found = by_rule(scan(root), "RP007")
        assert len(found) == 1
        assert "both paths" in found[0].message

    def test_resolve_on_success_and_failure_is_clean(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                def dispatch(chain, server, plan):
                    hop = chain.begin_attempt(server.name)
                    try:
                        result = server.run(plan)
                    except RuntimeError as error:
                        chain.resolve(hop, "server_lost")
                        raise error
                    chain.resolve(hop, "ok")
                    return result
                """
            },
        )
        assert by_rule(scan(root), "RP007") == []

    def test_resolve_in_finally_is_clean(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                def dispatch(chain, server, plan):
                    hop = chain.begin_attempt(server.name)
                    outcome = "server_lost"
                    try:
                        result = server.run(plan)
                        outcome = "ok"
                        return result
                    finally:
                        chain.resolve(hop, outcome)
                """
            },
        )
        assert by_rule(scan(root), "RP007") == []

    def test_escaped_hop_handle_is_the_callers_problem(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                def open_hop(chain, server):
                    server.inflight += 1
                    return chain.begin_attempt(server.name)

                def store_hop(entry, chain, server):
                    entry["hop"] = chain.begin_attempt(server.name)

                def pass_hop(entries, chain, server):
                    entries.append(make_entry(chain.begin_attempt(server.name)))
                """
            },
        )
        assert by_rule(scan(root), "RP007") == []

    def test_rule_scoped_to_engine_tree(self, tmp_path):
        root = project(
            tmp_path,
            {
                BENCH: """\
                def sloppy(chain, replica):
                    chain.begin_attempt(replica)
                """
            },
        )
        assert by_rule(scan(root), "RP007") == []


class TestSuppression:
    def test_targeted_noqa_suppresses_only_that_rule(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                import time

                def run(sim):
                    return time.time()  # repro: noqa[RP001]
                """
            },
        )
        assert scan(root).findings == []

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                import time

                def run(sim):
                    return time.time()  # repro: noqa[RP006]
                """
            },
        )
        assert len(by_rule(scan(root), "RP001")) == 1

    def test_blanket_noqa_suppresses_everything(self, tmp_path):
        root = project(
            tmp_path,
            {
                ENGINE: """\
                import time

                def run(sim):
                    return time.time()  # repro: noqa
                """
            },
        )
        assert scan(root).findings == []

    def test_marker_inside_string_literal_is_inert(self):
        assert noqa_lines('text = "# repro: noqa[RP001]"\n') == {}

    def test_is_suppressed_semantics(self):
        noqa = noqa_lines("x = 1  # repro: noqa[RP001, rp002]\ny = 2\n")
        assert is_suppressed(noqa, 1, "RP001")
        assert is_suppressed(noqa, 1, "RP002")
        assert not is_suppressed(noqa, 1, "RP003")
        assert not is_suppressed(noqa, 2, "RP001")


VIOLATION = {
    ENGINE: """\
    import time

    def run(sim):
        return time.time()
    """
}


class TestBaseline:
    def test_round_trip(self, tmp_path):
        root = project(tmp_path, dict(VIOLATION))
        result = scan(root)
        assert len(result.findings) == 1
        path = root / DEFAULT_BASELINE_NAME
        assert write_baseline(path, result.findings) == 1
        fresh, baselined = load_baseline(path).apply(result.findings)
        assert fresh == []
        assert len(baselined) == 1

    def test_reasons_survive_regeneration(self, tmp_path):
        root = project(tmp_path, dict(VIOLATION))
        result = scan(root)
        path = root / DEFAULT_BASELINE_NAME
        write_baseline(path, result.findings)
        payload = json.loads(path.read_text())
        payload["entries"][0]["reason"] = "intentional wall-clock probe"
        path.write_text(json.dumps(payload))
        previous = load_baseline(path)
        write_baseline(path, result.findings, previous)
        regenerated = load_baseline(path)
        assert list(regenerated.reasons.values()) == [
            "intentional wall-clock probe"
        ]

    def test_fixed_findings_become_stale_entries(self, tmp_path):
        root = project(tmp_path, dict(VIOLATION))
        result = scan(root)
        path = root / DEFAULT_BASELINE_NAME
        write_baseline(path, result.findings)
        baseline = load_baseline(path)
        stale = baseline.stale_entries([])
        assert len(stale) == 1
        assert stale[0][0] == "RP001"

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / DEFAULT_BASELINE_NAME
        path.write_text('{"entries": [{"rule": "RP001"}]}')
        with pytest.raises(BaselineError):
            load_baseline(path)


class TestCli:
    def test_violation_exits_one_with_text_report(self, tmp_path):
        root = project(tmp_path, dict(VIOLATION))
        out = io.StringIO()
        assert main([str(root)], out=out) == 1
        text = out.getvalue()
        assert "RP001" in text
        assert "src/repro/engine/mod.py:4" in text

    def test_json_format(self, tmp_path):
        root = project(tmp_path, dict(VIOLATION))
        out = io.StringIO()
        assert main([str(root), "--format", "json"], out=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["version"] == 1
        assert payload["checked_files"] == 1
        assert payload["baselined"] == 0
        assert [f["rule"] for f in payload["findings"]] == ["RP001"]

    def test_write_baseline_then_gate_passes(self, tmp_path):
        root = project(tmp_path, dict(VIOLATION))
        out = io.StringIO()
        assert main([str(root), "--write-baseline"], out=out) == 0
        assert main([str(root)], out=out) == 0
        assert main([str(root), "--no-baseline"], out=out) == 1

    def test_broken_baseline_exits_two(self, tmp_path):
        root = project(tmp_path, dict(VIOLATION))
        (root / DEFAULT_BASELINE_NAME).write_text("not json")
        assert main([str(root)], out=io.StringIO()) == 2

    def test_missing_path_exits_two(self, tmp_path):
        assert main([str(tmp_path / "nope")], out=io.StringIO()) == 2

    def test_list_rules(self):
        out = io.StringIO()
        assert main(["--list-rules"], out=out) == 0
        lines = out.getvalue().splitlines()
        assert len(lines) == 7
        assert lines[0].startswith("RP001")


class TestSelfScan:
    """The repo's own tree must pass its own gate (CI runs this too)."""

    def test_src_and_benchmarks_have_no_unbaselined_findings(self):
        result = analyze_paths(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks"], root=REPO_ROOT
        )
        assert result.checked_files > 50
        baseline_path = REPO_ROOT / DEFAULT_BASELINE_NAME
        baseline = Baseline()
        if baseline_path.exists():
            baseline = load_baseline(baseline_path)
        fresh, _ = baseline.apply(result.findings)
        assert [f.render_text() for f in fresh] == []

    def test_cli_gate_passes_on_repo(self):
        out = io.StringIO()
        code = main(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")], out=out
        )
        assert code == 0
