"""Smoke tests for the experiment harnesses (small scales).

The full paper-shape assertions live in benchmarks/; these tests verify
the harness plumbing (series structure, notes, sentinels) cheaply.
"""

import math

import pytest

from repro.micro.harness import MicroSettings, run_scaleup, run_sizeup
from repro.ssb.harness import (
    FAILED,
    HarnessSettings,
    run_fig4,
    run_fig5,
    run_fig6,
)

SMALL = HarnessSettings(physical_sf=0.002, block_tuples=256, segment_rows=1024)
MICRO = MicroSettings(physical_rows=20_000, block_tuples=512, segment_rows=2048)


class TestSSBHarness:
    def test_fig4_structure(self):
        result = run_fig4(SMALL, queries=["Q1.1", "Q2.2"])
        assert set(result.seconds) == {"DBMS C", "Proteus CPUs",
                                       "Proteus GPUs", "DBMS G"}
        assert result.seconds["Proteus GPUs"]["Q1.1"] > 0
        assert math.isnan(result.seconds["DBMS G"]["Q2.2"])
        assert result.working_set["Q1.1"] > 0

    def test_fig5_structure(self):
        result = run_fig5(SMALL, queries=["Q1.1", "Q4.3"])
        assert "Proteus Hybrid" in result.seconds
        assert result.seconds["DBMS G"]["Q4.3"] == FAILED
        assert "DBMS G Q4.3" in result.notes

    def test_fig6_structure(self):
        result = run_fig6(SMALL, core_counts=(1, 4), gpu_settings=(0,),
                          groups=(1,))
        speedups = result["speedups"][(0, 1)]
        assert speedups[1] == pytest.approx(1.0, rel=0.05)
        assert speedups[4] > 2.0

    def test_speedup_helper(self):
        result = run_fig4(SMALL, queries=["Q1.1"])
        ratio = result.speedup("Proteus GPUs", "DBMS C", "Q1.1")
        assert ratio == pytest.approx(
            result.seconds["DBMS C"]["Q1.1"]
            / result.seconds["Proteus GPUs"]["Q1.1"])

    def test_config_modes(self):
        settings = HarnessSettings()
        assert settings.config("cpu").uses_cpu
        assert settings.config("gpu").uses_gpu
        assert settings.config("hybrid").is_hybrid
        with pytest.raises(ValueError):
            settings.config("quantum")


class TestMicroHarness:
    def test_scaleup_structure(self):
        result = run_scaleup("sum", MICRO, core_counts=(0, 1, 4),
                             gpu_counts=(0, 1))
        assert (0, 1) in result["times"] and (1, 0) in result["times"]
        assert (0, 0) not in result["times"]
        assert result["bare_cpu"] > 0 and result["bare_gpu"] > 0
        assert result["speedups"][(0, 4)] > result["speedups"][(0, 1)]

    def test_sizeup_structure(self):
        result = run_sizeup("join", MICRO, sizes_gb=(0.25, 1.0), device="gpu")
        assert set(result["with_hetexchange"]) == {0.25, 1.0}
        assert result["overhead"][1.0] < result["overhead"][0.25] + 0.05

    def test_unknown_query_rejected(self):
        with pytest.raises(ValueError, match="unknown microbenchmark"):
            run_scaleup("median", MICRO, core_counts=(1,), gpu_counts=(0,))

    def test_join_count_is_correct(self):
        """The microbenchmark queries return real results too."""
        from repro.engine.config import ExecutionConfig
        from repro.micro.harness import _engine_for, _plan

        engine = _engine_for("join", MICRO, sum_bytes=1e9)
        result = engine.query(_plan("join"),
                              ExecutionConfig.hybrid(2, [0], block_tuples=512))
        # every probe key matches by construction
        assert result.value("matches") == MICRO.physical_rows
