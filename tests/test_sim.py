"""Unit tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
    Store,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.5)
        return sim.now

    assert sim.run_process(proc()) == 2.5
    assert sim.now == 2.5


def test_timeout_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        return "done"

    assert sim.run_process(proc()) == "done"


def test_nested_processes_compose():
    sim = Simulator()

    def child(delay):
        yield sim.timeout(delay)
        return delay * 2

    def parent():
        first = yield sim.process(child(1.0))
        second = yield sim.process(child(0.5))
        return first + second

    assert sim.run_process(parent()) == 3.0
    assert sim.now == 1.5


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_trigger_and_value():
    sim = Simulator()
    event = sim.event("flag")

    def waiter():
        value = yield event
        return value

    def setter():
        yield sim.timeout(3)
        event.trigger(42)

    proc = sim.process(waiter())
    sim.process(setter())
    sim.run()
    assert proc.value == 42
    assert sim.now == 3


def test_event_double_trigger_raises():
    sim = Simulator()
    event = sim.event()
    event.trigger(1)
    with pytest.raises(SimulationError):
        event.trigger(2)


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    event = sim.event()

    def waiter():
        try:
            yield event
        except ValueError as err:
            return f"caught {err}"

    proc = sim.process(waiter())
    event.fail(ValueError("boom"))
    sim.run()
    assert proc.value == "caught boom"


def test_uncaught_process_exception_propagates_via_run_process():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("kaput")

    with pytest.raises(RuntimeError, match="kaput"):
        sim.run_process(bad())


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    proc = sim.process(bad())
    sim.run()
    assert not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def proc():
        events = [sim.timeout(3, value="slow"), sim.timeout(1, value="fast")]
        values = yield sim.all_of(events)
        return values

    assert sim.run_process(proc()) == ["slow", "fast"]
    assert sim.now == 3


def test_any_of_returns_first():
    sim = Simulator()

    def proc():
        value = yield sim.any_of([sim.timeout(3, "slow"), sim.timeout(1, "fast")])
        return value

    assert sim.run_process(proc()) == "fast"


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    event = AllOf(sim, [])
    sim.run()
    assert event.triggered and event.value == []


def test_any_of_empty_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim, [])


def test_interrupt_is_delivered():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as interrupt:
            return (f"interrupted: {interrupt.cause}", sim.now)

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(1)
        proc.interrupt("wake up")

    sim.process(interrupter())
    sim.run()
    # the stale timeout still drains the heap at t=100, but the process
    # itself resumed (and finished) at the interrupt instant
    assert proc.value == ("interrupted: wake up", 1)


def test_run_until_stops_clock():
    sim = Simulator()
    sim.process(iter_timeouts(sim, [1, 2, 3]))
    sim.run(until=1.5)
    assert sim.now == 1.5


def iter_timeouts(sim, delays):
    for delay in delays:
        yield sim.timeout(delay)


class TestStore:
    def test_fifo_order(self):
        sim = Simulator()
        store = sim.store()

        def producer():
            for i in range(5):
                yield store.put(i)

        def consumer():
            out = []
            for _ in range(5):
                item = yield store.get()
                out.append(item)
            return out

        sim.process(producer())
        proc = sim.process(consumer())
        sim.run()
        assert proc.value == [0, 1, 2, 3, 4]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = sim.store()

        def consumer():
            item = yield store.get()
            return (item, sim.now)

        def producer():
            yield sim.timeout(5)
            yield store.put("x")

        proc = sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert proc.value == ("x", 5)

    def test_capacity_blocks_put(self):
        sim = Simulator()
        store = sim.store(capacity=1)
        times = []

        def producer():
            yield store.put(1)
            times.append(sim.now)
            yield store.put(2)  # blocks until the consumer takes item 1
            times.append(sim.now)

        def consumer():
            yield sim.timeout(7)
            yield store.get()
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert times == [0, 7]

    def test_close_delivers_end_sentinel(self):
        sim = Simulator()
        store = sim.store()

        def consumer():
            first = yield store.get()
            second = yield store.get()
            return (first, second)

        proc = sim.process(consumer())
        store.put("only")
        store.close()
        sim.run()
        assert proc.value == ("only", Store.END)

    def test_close_drains_buffered_items_first(self):
        sim = Simulator()
        store = sim.store()
        store.put(1)
        store.put(2)
        store.close()

        def consumer():
            items = []
            while True:
                item = yield store.get()
                if item is Store.END:
                    return items
                items.append(item)

        assert sim.run_process(consumer()) == [1, 2]

    def test_put_after_close_raises(self):
        sim = Simulator()
        store = sim.store()
        store.close()
        with pytest.raises(SimulationError):
            store.put(1)

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.store(capacity=0)


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.001, max_value=100), min_size=1,
                       max_size=20))
def test_clock_is_monotone_and_ends_at_max_delay(delays):
    sim = Simulator()
    seen = []

    def proc(delay):
        yield sim.timeout(delay)
        seen.append(sim.now)

    for delay in delays:
        sim.process(proc(delay))
    sim.run()
    assert seen == sorted(seen)
    assert sim.now == pytest.approx(max(delays))


@settings(max_examples=30, deadline=None)
@given(items=st.lists(st.integers(), min_size=0, max_size=50),
       capacity=st.integers(min_value=1, max_value=8))
def test_store_preserves_items_through_bounded_queue(items, capacity):
    sim = Simulator()
    store = sim.store(capacity=capacity)

    def producer():
        for item in items:
            yield store.put(item)
        store.close()

    def consumer():
        out = []
        while True:
            item = yield store.get()
            if item is Store.END:
                return out
            out.append(item)

    sim.process(producer())
    proc = sim.process(consumer())
    sim.run()
    assert proc.value == items
