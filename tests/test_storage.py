"""Unit tests for columns, dictionaries, tables, schemas, catalog."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.sim import Simulator
from repro.hardware.topology import Server
from repro.storage import (
    Catalog,
    Column,
    DataType,
    Schema,
    StringDictionary,
    Table,
)
from repro.storage.types import ColumnType


class TestStringDictionary:
    def test_codes_are_sorted_order(self):
        d = StringDictionary(["pear", "apple", "pear", "banana"])
        assert d.values == ["apple", "banana", "pear"]
        assert d.encode("apple") == 0
        assert d.encode("pear") == 2

    def test_decode_roundtrip(self):
        d = StringDictionary(["x", "y", "z"])
        for value in ("x", "y", "z"):
            assert d.decode(d.encode(value)) == value

    def test_encode_missing_raises(self):
        d = StringDictionary(["a"])
        with pytest.raises(KeyError):
            d.encode("zzz")

    def test_bounds_for_absent_values(self):
        d = StringDictionary(["b", "d", "f"])
        assert d.encode_bound("a") == 0
        assert d.encode_bound("c") == 1
        assert d.encode_bound("d") == 1
        assert d.encode_upper_bound("d") == 2
        assert d.encode_upper_bound("z") == 3

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.text(min_size=1, max_size=8), min_size=1,
                           max_size=40))
    def test_roundtrip_property(self, values):
        d = StringDictionary(values)
        codes = d.encode_array(values)
        assert d.decode_array(codes) == values

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.text(min_size=1, max_size=6), min_size=2,
                           max_size=30))
    def test_code_order_matches_string_order(self, values):
        """Dictionary codes preserve lexicographic comparisons — the
        property string-range predicate rewriting relies on."""
        d = StringDictionary(values)
        for a in values:
            for b in values:
                assert (d.encode(a) < d.encode(b)) == (a < b)


class TestColumn:
    def test_from_strings_builds_dictionary(self):
        column = Column.from_strings("c", ["b", "a", "b"])
        assert column.dtype is DataType.STRING
        assert list(column.values) == [1, 0, 1]
        assert column.decoded() == ["b", "a", "b"]

    def test_numeric_column_casts_dtype(self):
        column = Column.from_values("n", DataType.INT32, [1.0, 2.0])
        assert column.values.dtype == np.int32

    def test_string_column_requires_dictionary(self):
        with pytest.raises(ValueError):
            Column("s", DataType.STRING, np.array([0, 1], dtype=np.int32))

    def test_slice_is_view(self):
        column = Column.from_values("n", DataType.INT64, np.arange(10))
        view = column.slice(2, 5)
        assert list(view) == [2, 3, 4]
        assert view.base is column.values

    def test_nbytes(self):
        column = Column.from_values("n", DataType.INT32, np.arange(10))
        assert column.nbytes == 40
        assert column.width_bytes == 4


class TestSchemaAndTable:
    def test_duplicate_column_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([ColumnType("a", DataType.INT32), ColumnType("a", DataType.INT64)])

    def test_unknown_column_raises_helpfully(self):
        schema = Schema([ColumnType("a", DataType.INT32)])
        with pytest.raises(KeyError, match="unknown column"):
            schema.column("b")

    def test_ragged_table_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            Table("t", [
                Column.from_values("a", DataType.INT32, [1, 2]),
                Column.from_values("b", DataType.INT32, [1]),
            ])

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [])

    def test_row_decodes_strings(self):
        table = Table("t", [
            Column.from_values("a", DataType.INT32, [7, 8]),
            Column.from_strings("s", ["x", "y"]),
        ])
        assert table.row(1) == {"a": 8, "s": "y"}

    def test_column_bytes(self):
        table = Table("t", [
            Column.from_values("a", DataType.INT32, [1, 2]),
            Column.from_values("b", DataType.INT64, [1, 2]),
        ])
        assert table.column_bytes() == 2 * 4 + 2 * 8
        assert table.column_bytes(["a"]) == 8


class TestCatalog:
    def _catalog(self, segment_rows=100):
        sim = Simulator()
        return Catalog(Server.paper_machine(sim), segment_rows=segment_rows)

    def _table(self, rows=250):
        return Table("t", [Column.from_values("a", DataType.INT32,
                                              np.arange(rows))])

    def test_register_and_lookup(self):
        catalog = self._catalog()
        catalog.register(self._table())
        assert catalog.table("t").num_rows == 250
        with pytest.raises(KeyError, match="unknown table"):
            catalog.table("nope")

    def test_double_registration_rejected(self):
        catalog = self._catalog()
        catalog.register(self._table())
        with pytest.raises(ValueError):
            catalog.register(self._table())

    def test_interleaved_placement_alternates_sockets(self):
        catalog = self._catalog(segment_rows=100)
        catalog.register(self._table(250))
        nodes = [s.node_id for s in catalog.placement("t").segments]
        assert nodes == ["cpu:0", "cpu:1", "cpu:0"]
        assert catalog.placement("t").num_rows == 250

    def test_gpu_partitioned_placement(self):
        catalog = self._catalog(segment_rows=50)
        catalog.register(self._table(250))
        catalog.place_gpu_partitioned("t", seed=1)
        nodes = catalog.placement("t").nodes()
        assert nodes <= {"gpu:0", "gpu:1"}
        assert catalog.placement("t").num_rows == 250

    def test_gpu_replication_flags(self):
        catalog = self._catalog()
        catalog.register(self._table())
        catalog.place_gpu_replicated("t")
        assert catalog.is_replicated_on("t", "gpu:0")
        assert catalog.is_replicated_on("t", "gpu:1")
        assert not catalog.is_replicated_on("t", "cpu:0")

    def test_logical_scale(self):
        catalog = self._catalog()
        catalog.register(self._table(250))
        assert catalog.logical_scale("t") == 1.0
        catalog.set_logical_scale("t", 100.0)
        assert catalog.logical_bytes("t") == 250 * 4 * 100.0
        with pytest.raises(ValueError):
            catalog.set_logical_scale("t", 0)

    def test_bytes_on_node(self):
        catalog = self._catalog(segment_rows=100)
        catalog.register(self._table(200))
        on0 = catalog.bytes_on_node("cpu:0")
        on1 = catalog.bytes_on_node("cpu:1")
        assert on0 == on1 == 100 * 4
