"""Unit tests for server topology and the cost model."""

import pytest

from repro.hardware.costmodel import (
    CYCLES,
    DBMS_C_TUNING,
    DBMS_G_TUNING,
    DEFAULT_COMPILE_SECONDS,
    PROTEUS_TUNING,
    BlockStats,
    CostModel,
)
from repro.hardware.sim import Simulator
from repro.hardware.specs import PAPER_SERVER, ServerSpec
from repro.hardware.topology import Server


class TestSpecs:
    def test_paper_server_shape(self):
        spec = PAPER_SERVER
        assert spec.total_cores == 24
        assert spec.num_gpus == 2
        assert spec.aggregate_pcie_bandwidth == pytest.approx(24e9)
        assert spec.aggregate_gpu_memory == pytest.approx(16e9)

    def test_gpus_per_socket_validation(self):
        with pytest.raises(ValueError):
            ServerSpec(gpus_per_socket=(2, 1))
        with pytest.raises(ValueError):
            ServerSpec(num_sockets=1, gpus_per_socket=(1, 1))

    def test_scaled_override(self):
        spec = PAPER_SERVER.scaled(num_gpus=4, gpus_per_socket=(2, 2))
        assert spec.num_gpus == 4
        assert PAPER_SERVER.num_gpus == 2  # original untouched


class TestTopology:
    def _server(self):
        return Server.paper_machine(Simulator())

    def test_construction(self):
        server = self._server()
        assert len(server.cores) == 24
        assert len(server.gpus) == 2
        assert set(server.memory_nodes) == {"cpu:0", "cpu:1", "gpu:0", "gpu:1"}
        assert server.gpus[0].socket_id == 0
        assert server.gpus[1].socket_id == 1

    def test_socket_of(self):
        server = self._server()
        assert server.socket_of("cpu:1") == 1
        assert server.socket_of("gpu:0") == 0

    def test_memory_node_capacity(self):
        server = self._server()
        node = server.memory_nodes["gpu:0"]
        node.allocate(7e9)
        with pytest.raises(MemoryError):
            node.allocate(2e9)
        node.free(7e9)
        node.allocate(2e9)

    def test_custom_topology(self):
        spec = ServerSpec(num_sockets=2, cores_per_socket=8, num_gpus=4,
                          gpus_per_socket=(2, 2))
        server = Server(Simulator(), spec)
        assert len(server.cores) == 16
        assert len(server.gpus) == 4
        assert server.sockets[0].gpu_ids == [0, 1]


class TestPaths:
    """Multi-path interconnect enumeration (NUMA hop vs. direct PCIe)."""

    def _server(self):
        return Server.paper_machine(Simulator())

    def test_local_path_is_free(self):
        server = self._server()
        paths = server.paths_between("cpu:0", "cpu:0")
        assert len(paths) == 1
        assert paths[0].is_local
        model = CostModel(PAPER_SERVER)
        assert model.transfer_demand(1e9, paths[0]) == 0.0

    def test_same_socket_cpu_to_gpu_single_direct_path(self):
        server = self._server()
        paths = server.paths_between("cpu:0", "gpu:0")
        assert [p.key for p in paths] == ["pcie"]
        path = paths[0]
        assert [link.name for link in path.links] == ["pcie:0"]
        assert [d.node_id for d in path.drams] == ["cpu:0"]
        assert path.setups == 1 and not path.peer_dma

    def test_cross_socket_cpu_to_gpu_enumerates_both_routes(self):
        server = self._server()
        paths = server.paths_between("cpu:1", "gpu:0")
        assert [p.key for p in paths] == ["qpi-direct", "numa-hop:cpu:0"]
        direct, hop = paths
        assert direct.peer_dma and direct.setups == 1
        assert {link.name for link in direct.links} == {"qpi:0-1", "pcie:0"}
        assert [d.node_id for d in direct.drams] == ["cpu:1"]
        # the NUMA hop bounces through the GPU-side socket's arena:
        # full pinned rate, second DRAM touch, second DMA setup
        assert not hop.peer_dma and hop.setups == 2
        assert [d.node_id for d in hop.drams] == ["cpu:1", "cpu:0"]

    def test_gpu_to_gpu_routes_choose_the_bounce_socket(self):
        server = self._server()
        paths = server.paths_between("gpu:0", "gpu:1")
        assert [p.key for p in paths] == [
            "host-bounce:cpu:0", "host-bounce:cpu:1",
        ]
        for path in paths:
            assert path.setups == 2 and path.peer_dma
            assert {link.name for link in path.links} == {
                "pcie:0", "qpi:0-1", "pcie:1",
            }

    def test_cpu_to_cpu_crosses_qpi(self):
        server = self._server()
        paths = server.paths_between("cpu:0", "cpu:1")
        assert [p.key for p in paths] == ["qpi"]
        assert [link.name for link in paths[0].links] == ["qpi:0-1"]
        assert [d.node_id for d in paths[0].drams] == ["cpu:0", "cpu:1"]

    def test_queue_depth_reflects_in_flight_dma(self):
        server = self._server()
        path = server.paths_between("cpu:0", "gpu:0")[0]
        assert path.queue_depth == 0
        server.gpus[0].link.bandwidth.submit(1e9, rate_cap=12e9, label="bg")
        assert path.queue_depth == 1


class TestTransferDemand:
    """Path pricing: contention-dependent, deterministic, calibrated."""

    def _env(self):
        server = Server.paper_machine(Simulator())
        return server, CostModel(PAPER_SERVER)

    def test_idle_direct_path_prices_setup_plus_wire_time(self):
        server, model = self._env()
        path = server.paths_between("cpu:0", "gpu:0")[0]
        expected = PAPER_SERVER.dma_setup_seconds + 1e9 / 12e9
        assert model.transfer_demand(1e9, path) == pytest.approx(expected)

    def test_remote_read_path_pays_the_peer_dma_cap(self):
        server, model = self._env()
        direct, hop = server.paths_between("cpu:1", "gpu:0")
        d = model.transfer_demand(1e9, direct)
        h = model.transfer_demand(1e9, hop)
        assert d == pytest.approx(
            PAPER_SERVER.dma_setup_seconds + 1e9 / PAPER_SERVER.qpi_peer_dma_cap
        )
        assert h == pytest.approx(
            2 * PAPER_SERVER.dma_setup_seconds + 1e9 / 12e9
        )
        # big idle transfer: the NUMA hop's full pinned rate wins
        assert h < d

    def test_tiny_transfers_prefer_the_single_setup_route(self):
        server, model = self._env()
        direct, hop = server.paths_between("cpu:1", "gpu:0")
        nbytes = 10_000  # wire time ~1 us << the extra 5 us setup
        assert model.transfer_demand(nbytes, direct) < \
            model.transfer_demand(nbytes, hop)

    def test_contention_raises_the_loaded_route_price(self):
        server, model = self._env()
        _, hop = server.paths_between("cpu:1", "gpu:0")
        idle = model.transfer_demand(1e9, hop)
        for _ in range(8):
            server.memory_nodes["cpu:0"].bandwidth.submit(
                1e9, rate_cap=5.6e9, label="bg"
            )
        assert model.transfer_demand(1e9, hop) > idle

    def test_scale_inflates_the_estimate(self):
        server, model = self._env()
        path = server.paths_between("cpu:0", "gpu:0")[0]
        unit = model.transfer_demand(1e6, path, scale=1.0)
        scaled = model.transfer_demand(1e6, path, scale=1000.0)
        assert scaled > 500 * unit

    def test_estimate_is_deterministic(self):
        server, model = self._env()
        path = server.paths_between("cpu:1", "gpu:0")[0]
        assert model.transfer_demand(1e8, path) == \
            model.transfer_demand(1e8, path)

    def test_pageable_engines_capped_on_every_path(self):
        server, _ = self._env()
        dbms_g = CostModel(PAPER_SERVER, DBMS_G_TUNING)
        path = server.paths_between("cpu:0", "gpu:0")[0]
        assert dbms_g.path_rate_cap(path) == pytest.approx(5e9)


class TestCostModel:
    def _stats(self, **kw):
        defaults = dict(tuples_in=1_000_000, bytes_in=16_000_000,
                        bytes_out=0, random_accesses=0, random_bytes=0,
                        cpu_cycles=5_000_000, gpu_ops=2_000_000)
        defaults.update(kw)
        return BlockStats(**defaults)

    def test_cpu_work_memory_bound(self):
        model = CostModel(PAPER_SERVER)
        req = model.cpu_block_work(self._stats())
        assert req.work_bytes == pytest.approx(16_000_000)
        assert req.rate_cap == pytest.approx(PAPER_SERVER.core_stream_bandwidth)

    def test_cpu_work_compute_bound_lowers_rate(self):
        model = CostModel(PAPER_SERVER)
        req = model.cpu_block_work(self._stats(cpu_cycles=2e9))
        compute_seconds = 2e9 / PAPER_SERVER.cpu_frequency_hz
        assert req.min_duration == pytest.approx(compute_seconds)

    def test_random_bytes_amplified_on_cpu(self):
        model = CostModel(PAPER_SERVER)
        base = model.cpu_block_work(self._stats())
        noisy = model.cpu_block_work(self._stats(random_bytes=1_000_000))
        amplification = PROTEUS_TUNING.cpu_random_amplification
        assert noisy.work_bytes - base.work_bytes == pytest.approx(
            1_000_000 * amplification)

    def test_scale_multiplies_everything(self):
        model = CostModel(PAPER_SERVER)
        unit = model.cpu_block_work(self._stats(), scale=1.0)
        scaled = model.cpu_block_work(self._stats(), scale=100.0)
        assert scaled.work_bytes == pytest.approx(unit.work_bytes * 100)

    def test_gpu_work_pays_kernel_launch(self):
        model = CostModel(PAPER_SERVER)
        req = model.gpu_block_work(self._stats())
        assert req.setup_seconds == pytest.approx(
            PAPER_SERVER.kernel_launch_seconds)

    def test_dbms_g_occupancy_halves_bandwidth(self):
        proteus = CostModel(PAPER_SERVER, PROTEUS_TUNING)
        dbms_g = CostModel(PAPER_SERVER, DBMS_G_TUNING)
        fast = proteus.gpu_block_work(self._stats())
        slow = dbms_g.gpu_block_work(self._stats())
        assert slow.min_duration > fast.min_duration * 1.8

    def test_pageable_transfers_capped(self):
        proteus = CostModel(PAPER_SERVER, PROTEUS_TUNING)
        dbms_g = CostModel(PAPER_SERVER, DBMS_G_TUNING)
        assert proteus.transfer_plan(1e9).link_rate_cap == pytest.approx(12e9)
        assert dbms_g.transfer_plan(1e9).link_rate_cap == pytest.approx(5e9)

    def test_dbms_c_dispatch_overhead(self):
        proteus = CostModel(PAPER_SERVER, PROTEUS_TUNING)
        dbms_c = CostModel(PAPER_SERVER, DBMS_C_TUNING)
        stats = self._stats(cpu_cycles=5e9, bytes_in=0)
        assert (dbms_c.cpu_block_work(stats).min_duration
                > proteus.cpu_block_work(stats).min_duration)

    def test_sum_pipeline_reaches_core_stream_rate(self):
        """Figure 7 anchor: a sum pipeline must be memory-bound per core."""
        model = CostModel(PAPER_SERVER)
        tuples = 1 << 20
        stats = BlockStats(
            tuples_in=tuples, bytes_in=tuples * 8,
            cpu_cycles=tuples * (CYCLES.unpack_per_tuple
                                 + CYCLES.aggregate_update),
        )
        req = model.cpu_block_work(stats)
        assert req.rate_cap == pytest.approx(PAPER_SERVER.core_stream_bandwidth)


class TestCompileDemand:
    """Per-device JIT compile pricing (replaces the flat constant)."""

    @staticmethod
    def _stage(device, n_ops):
        from repro.algebra.physical import OpUnpack, Stage
        from repro.hardware.topology import DeviceType

        dtype = DeviceType.GPU if device == "gpu" else DeviceType.CPU
        return Stage(
            stage_id=0, name=f"s-{device}", device=dtype,
            ops=[OpUnpack(columns=["a"]) for _ in range(n_ops)], dop=1,
        )

    def test_gpu_pipelines_cost_5_to_10x_cpu(self):
        model = CostModel(PAPER_SERVER)
        cpu = model.compile_demand(self._stage("cpu", 3))
        gpu = model.compile_demand(self._stage("gpu", 3))
        assert 5.0 <= gpu / cpu <= 10.0

    def test_longer_operator_chains_cost_more(self):
        model = CostModel(PAPER_SERVER)
        short = model.compile_demand(self._stage("cpu", 2))
        long = model.compile_demand(self._stage("cpu", 6))
        assert long > short

    def test_base_seconds_rescales_and_zero_disables(self):
        model = CostModel(PAPER_SERVER)
        stage = self._stage("gpu", 4)
        default = model.compile_demand(stage)
        assert model.compile_demand(stage, base_seconds=DEFAULT_COMPILE_SECONDS) \
            == pytest.approx(default)
        assert model.compile_demand(stage, base_seconds=2 * DEFAULT_COMPILE_SECONDS) \
            == pytest.approx(2 * default)
        assert model.compile_demand(stage, base_seconds=0.0) == 0.0

    def test_minimal_cpu_stage_pays_exactly_the_base(self):
        """The smallest pipeline anchors to the historical flat charge,
        so existing latency lower-bound tests stay valid."""
        model = CostModel(PAPER_SERVER)
        assert model.compile_demand(self._stage("cpu", 2)) \
            == pytest.approx(DEFAULT_COMPILE_SECONDS)
