"""Unit tests for server topology and the cost model."""

import pytest

from repro.hardware.costmodel import (
    CYCLES,
    DBMS_C_TUNING,
    DBMS_G_TUNING,
    DEFAULT_COMPILE_SECONDS,
    PROTEUS_TUNING,
    BlockStats,
    CostModel,
)
from repro.hardware.sim import Simulator
from repro.hardware.specs import PAPER_SERVER, ServerSpec
from repro.hardware.topology import Server


class TestSpecs:
    def test_paper_server_shape(self):
        spec = PAPER_SERVER
        assert spec.total_cores == 24
        assert spec.num_gpus == 2
        assert spec.aggregate_pcie_bandwidth == pytest.approx(24e9)
        assert spec.aggregate_gpu_memory == pytest.approx(16e9)

    def test_gpus_per_socket_validation(self):
        with pytest.raises(ValueError):
            ServerSpec(gpus_per_socket=(2, 1))
        with pytest.raises(ValueError):
            ServerSpec(num_sockets=1, gpus_per_socket=(1, 1))

    def test_scaled_override(self):
        spec = PAPER_SERVER.scaled(num_gpus=4, gpus_per_socket=(2, 2))
        assert spec.num_gpus == 4
        assert PAPER_SERVER.num_gpus == 2  # original untouched


class TestTopology:
    def _server(self):
        return Server.paper_machine(Simulator())

    def test_construction(self):
        server = self._server()
        assert len(server.cores) == 24
        assert len(server.gpus) == 2
        assert set(server.memory_nodes) == {"cpu:0", "cpu:1", "gpu:0", "gpu:1"}
        assert server.gpus[0].socket_id == 0
        assert server.gpus[1].socket_id == 1

    def test_socket_of(self):
        server = self._server()
        assert server.socket_of("cpu:1") == 1
        assert server.socket_of("gpu:0") == 0

    def test_links_on_path(self):
        server = self._server()
        assert server.links_on_path("cpu:0", "cpu:1") == []
        assert [link.gpu_id
                for link in server.links_on_path("cpu:0", "gpu:0")] == [0]
        assert sorted(link.gpu_id for link in
                      server.links_on_path("gpu:0", "gpu:1")) == [0, 1]
        assert server.links_on_path("gpu:0", "gpu:0") == []

    def test_dram_on_path(self):
        server = self._server()
        assert [n.node_id for n in server.dram_on_path("cpu:0", "gpu:1")] == ["cpu:0"]
        # GPU peer transfers stage through the source GPU's host socket
        assert [n.node_id for n in server.dram_on_path("gpu:1", "gpu:0")] == ["cpu:1"]

    def test_memory_node_capacity(self):
        server = self._server()
        node = server.memory_nodes["gpu:0"]
        node.allocate(7e9)
        with pytest.raises(MemoryError):
            node.allocate(2e9)
        node.free(7e9)
        node.allocate(2e9)

    def test_custom_topology(self):
        spec = ServerSpec(num_sockets=2, cores_per_socket=8, num_gpus=4,
                          gpus_per_socket=(2, 2))
        server = Server(Simulator(), spec)
        assert len(server.cores) == 16
        assert len(server.gpus) == 4
        assert server.sockets[0].gpu_ids == [0, 1]


class TestCostModel:
    def _stats(self, **kw):
        defaults = dict(tuples_in=1_000_000, bytes_in=16_000_000,
                        bytes_out=0, random_accesses=0, random_bytes=0,
                        cpu_cycles=5_000_000, gpu_ops=2_000_000)
        defaults.update(kw)
        return BlockStats(**defaults)

    def test_cpu_work_memory_bound(self):
        model = CostModel(PAPER_SERVER)
        req = model.cpu_block_work(self._stats())
        assert req.work_bytes == pytest.approx(16_000_000)
        assert req.rate_cap == pytest.approx(PAPER_SERVER.core_stream_bandwidth)

    def test_cpu_work_compute_bound_lowers_rate(self):
        model = CostModel(PAPER_SERVER)
        req = model.cpu_block_work(self._stats(cpu_cycles=2e9))
        compute_seconds = 2e9 / PAPER_SERVER.cpu_frequency_hz
        assert req.min_duration == pytest.approx(compute_seconds)

    def test_random_bytes_amplified_on_cpu(self):
        model = CostModel(PAPER_SERVER)
        base = model.cpu_block_work(self._stats())
        noisy = model.cpu_block_work(self._stats(random_bytes=1_000_000))
        amplification = PROTEUS_TUNING.cpu_random_amplification
        assert noisy.work_bytes - base.work_bytes == pytest.approx(
            1_000_000 * amplification)

    def test_scale_multiplies_everything(self):
        model = CostModel(PAPER_SERVER)
        unit = model.cpu_block_work(self._stats(), scale=1.0)
        scaled = model.cpu_block_work(self._stats(), scale=100.0)
        assert scaled.work_bytes == pytest.approx(unit.work_bytes * 100)

    def test_gpu_work_pays_kernel_launch(self):
        model = CostModel(PAPER_SERVER)
        req = model.gpu_block_work(self._stats())
        assert req.setup_seconds == pytest.approx(
            PAPER_SERVER.kernel_launch_seconds)

    def test_dbms_g_occupancy_halves_bandwidth(self):
        proteus = CostModel(PAPER_SERVER, PROTEUS_TUNING)
        dbms_g = CostModel(PAPER_SERVER, DBMS_G_TUNING)
        fast = proteus.gpu_block_work(self._stats())
        slow = dbms_g.gpu_block_work(self._stats())
        assert slow.min_duration > fast.min_duration * 1.8

    def test_pageable_transfers_capped(self):
        proteus = CostModel(PAPER_SERVER, PROTEUS_TUNING)
        dbms_g = CostModel(PAPER_SERVER, DBMS_G_TUNING)
        assert proteus.transfer_plan(1e9).link_rate_cap == pytest.approx(12e9)
        assert dbms_g.transfer_plan(1e9).link_rate_cap == pytest.approx(5e9)

    def test_dbms_c_dispatch_overhead(self):
        proteus = CostModel(PAPER_SERVER, PROTEUS_TUNING)
        dbms_c = CostModel(PAPER_SERVER, DBMS_C_TUNING)
        stats = self._stats(cpu_cycles=5e9, bytes_in=0)
        assert (dbms_c.cpu_block_work(stats).min_duration
                > proteus.cpu_block_work(stats).min_duration)

    def test_sum_pipeline_reaches_core_stream_rate(self):
        """Figure 7 anchor: a sum pipeline must be memory-bound per core."""
        model = CostModel(PAPER_SERVER)
        tuples = 1 << 20
        stats = BlockStats(
            tuples_in=tuples, bytes_in=tuples * 8,
            cpu_cycles=tuples * (CYCLES.unpack_per_tuple
                                 + CYCLES.aggregate_update),
        )
        req = model.cpu_block_work(stats)
        assert req.rate_cap == pytest.approx(PAPER_SERVER.core_stream_bandwidth)


class TestCompileDemand:
    """Per-device JIT compile pricing (replaces the flat constant)."""

    @staticmethod
    def _stage(device, n_ops):
        from repro.algebra.physical import OpUnpack, Stage
        from repro.hardware.topology import DeviceType

        dtype = DeviceType.GPU if device == "gpu" else DeviceType.CPU
        return Stage(
            stage_id=0, name=f"s-{device}", device=dtype,
            ops=[OpUnpack(columns=["a"]) for _ in range(n_ops)], dop=1,
        )

    def test_gpu_pipelines_cost_5_to_10x_cpu(self):
        model = CostModel(PAPER_SERVER)
        cpu = model.compile_demand(self._stage("cpu", 3))
        gpu = model.compile_demand(self._stage("gpu", 3))
        assert 5.0 <= gpu / cpu <= 10.0

    def test_longer_operator_chains_cost_more(self):
        model = CostModel(PAPER_SERVER)
        short = model.compile_demand(self._stage("cpu", 2))
        long = model.compile_demand(self._stage("cpu", 6))
        assert long > short

    def test_base_seconds_rescales_and_zero_disables(self):
        model = CostModel(PAPER_SERVER)
        stage = self._stage("gpu", 4)
        default = model.compile_demand(stage)
        assert model.compile_demand(stage, base_seconds=DEFAULT_COMPILE_SECONDS) \
            == pytest.approx(default)
        assert model.compile_demand(stage, base_seconds=2 * DEFAULT_COMPILE_SECONDS) \
            == pytest.approx(2 * default)
        assert model.compile_demand(stage, base_seconds=0.0) == 0.0

    def test_minimal_cpu_stage_pays_exactly_the_base(self):
        """The smallest pipeline anchors to the historical flat charge,
        so existing latency lower-bound tests stay valid."""
        model = CostModel(PAPER_SERVER)
        assert model.compile_demand(self._stage("cpu", 2)) \
            == pytest.approx(DEFAULT_COMPILE_SECONDS)
