"""Unit tests for the heterogeneity-aware placer and plan validation."""

import numpy as np
import pytest

from repro.algebra.expressions import col
from repro.algebra.logical import agg_sum, scan
from repro.algebra.physical import (
    OpBuildSink,
    OpFilter,
    OpPackSink,
    OpProbe,
    OpReduceSink,
    OpUnpack,
    PlanValidationError,
    RouterPolicy,
    Stage,
    validate_stage_graph,
)
from repro.algebra.placer import HeterogeneousPlacer, PlacementError
from repro.engine.config import ExecutionConfig
from repro.hardware.sim import Simulator
from repro.hardware.topology import DeviceType, Server
from repro.storage import Catalog, Column, DataType, Table


@pytest.fixture
def setup():
    sim = Simulator()
    server = Server.paper_machine(sim)
    catalog = Catalog(server, segment_rows=64)
    catalog.register(Table("fact", [
        Column.from_values("k", DataType.INT32, np.arange(200) % 40),
        Column.from_values("v", DataType.INT64, np.arange(200)),
    ]))
    catalog.register(Table("dim", [
        Column.from_values("dk", DataType.INT32, np.arange(40)),
        Column.from_values("g", DataType.INT32, np.arange(40) % 5),
    ]))
    return server, catalog, HeterogeneousPlacer(server, catalog)


def _join_plan():
    return (scan("fact", ["k", "v"])
            .join(scan("dim", ["dk", "g"]).filter(col("dk") < 30),
                  probe_key="k", build_key="dk", payload=["g"])
            .groupby(["g"], [agg_sum(col("v"), "s")]))


class TestDecomposition:
    def test_simple_reduce_plan(self, setup):
        _, _, placer = setup
        plan = scan("fact", ["v"]).reduce([agg_sum(col("v"), "s")])
        het = placer.place(plan, ExecutionConfig.cpu_only(4))
        assert len(het.phases) == 1
        phase = het.phases[0]
        assert len(phase.stages) == 2  # segmenter + CPU consumer
        sink = phase.stages[1].ops[-1]
        assert isinstance(sink, OpReduceSink)
        assert het.collect.scalar

    def test_join_produces_build_phase(self, setup):
        _, _, placer = setup
        het = placer.place(_join_plan(), ExecutionConfig.cpu_only(4))
        assert [p.name for p in het.phases] == ["build-ht0", "probe"]
        assert het.phases[0].produces_ht == "ht0"
        assert het.phases[1].consumes_ht == ["ht0"]
        build_sink = het.phases[0].stages[1].ops[-1]
        assert isinstance(build_sink, OpBuildSink)

    def test_build_phase_broadcasts(self, setup):
        _, _, placer = setup
        het = placer.place(_join_plan(), ExecutionConfig.hybrid(4, [0, 1]))
        build = het.phases[0]
        assert all(e.broadcast for e in build.edges)
        assert all(e.policy == RouterPolicy.TARGET for e in build.edges)
        probe = het.phases[1]
        assert all(e.policy == RouterPolicy.LOAD_BALANCE for e in probe.edges)
        assert not any(e.broadcast for e in probe.edges)

    def test_join_in_build_side_rejected(self, setup):
        _, _, placer = setup
        inner = scan("dim", ["dk", "g"]).join(
            scan("fact", ["k", "v"]), probe_key="dk", build_key="k")
        plan = scan("fact", ["k", "v"]).join(inner, probe_key="k", build_key="dk")
        with pytest.raises(PlacementError, match="build sides"):
            placer.place(plan, ExecutionConfig.cpu_only(2))


class TestDeviceStages:
    def test_cpu_only_has_no_gpu_stage(self, setup):
        _, _, placer = setup
        het = placer.place(_join_plan(), ExecutionConfig.cpu_only(6))
        devices = {s.device for s in het.all_stages() if not s.is_source}
        assert devices == {DeviceType.CPU}

    def test_gpu_only_consumers_on_gpu(self, setup):
        _, _, placer = setup
        het = placer.place(_join_plan(), ExecutionConfig.gpu_only([0, 1]))
        consumers = [s for s in het.all_stages() if not s.is_source]
        assert {s.device for s in consumers} == {DeviceType.GPU}
        assert all(s.dop == 2 for s in consumers)
        # sources (segmenters) always run on the CPU
        assert all(s.device is DeviceType.CPU for s in het.all_stages()
                   if s.is_source)

    def test_hybrid_has_one_stage_per_device_type(self, setup):
        _, _, placer = setup
        het = placer.place(_join_plan(), ExecutionConfig.hybrid(8, [1]))
        probe = het.phases[1]
        devices = [s.device for s in probe.stages if not s.is_source]
        assert sorted(d.value for d in devices) == ["cpu", "gpu"]
        gpu_stage = next(s for s in probe.stages if s.device is DeviceType.GPU)
        assert gpu_stage.affinity == [1]

    def test_cpu_affinity_interleaves_sockets(self, setup):
        server, _, placer = setup
        het = placer.place(_join_plan(), ExecutionConfig.cpu_only(4))
        cpu_stage = next(s for s in het.phases[1].stages
                         if s.device is DeviceType.CPU and not s.is_source)
        sockets = [server.cores[c].socket_id for c in cpu_stage.affinity]
        assert sockets == [0, 1, 0, 1]

    def test_too_many_workers_rejected(self, setup):
        _, _, placer = setup
        with pytest.raises(PlacementError, match="cores"):
            placer.place(_join_plan(), ExecutionConfig.cpu_only(25))

    def test_unknown_gpu_rejected(self, setup):
        _, _, placer = setup
        with pytest.raises(PlacementError, match="GPU"):
            placer.place(_join_plan(), ExecutionConfig.gpu_only([7]))


class TestBareMode:
    def test_bare_has_no_routers_or_memmoves(self, setup):
        _, _, placer = setup
        het = placer.place(_join_plan(), ExecutionConfig.bare_cpu())
        for edge in het.all_edges():
            assert edge.policy == RouterPolicy.UNION
            assert not edge.mem_move
        assert all(s.dop == 1 for s in het.all_stages())

    def test_bare_gpu_stages_target_gpu(self, setup):
        _, _, placer = setup
        het = placer.place(_join_plan(), ExecutionConfig.bare_gpu(1))
        consumers = [s for s in het.all_stages() if not s.is_source]
        assert {s.device for s in consumers} == {DeviceType.GPU}
        assert all(s.affinity == [1] for s in consumers)


class TestValidation:
    def test_placer_output_always_validates(self, setup):
        _, _, placer = setup
        for config in (ExecutionConfig.cpu_only(3),
                       ExecutionConfig.gpu_only([0]),
                       ExecutionConfig.hybrid(2, [0, 1])):
            het = placer.place(_join_plan(), config)
            validate_stage_graph(het)  # must not raise

    def test_missing_unpack_detected(self):
        stage = Stage("bad", DeviceType.CPU,
                      ops=[OpFilter(col("a") > 1), OpReduceSink([])])
        from repro.algebra.physical import HetPlan, Phase, CollectSpec
        plan = HetPlan(
            phases=[Phase("p", [stage], [])],
            collect=CollectSpec([], [], scalar=True),
        )
        with pytest.raises(PlanValidationError, match="unpack"):
            validate_stage_graph(plan)

    def test_missing_sink_detected(self):
        stage = Stage("bad", DeviceType.CPU,
                      ops=[OpUnpack(["a"]), OpFilter(col("a") > 1)])
        from repro.algebra.physical import HetPlan, Phase, CollectSpec
        plan = HetPlan(phases=[Phase("p", [stage], [])],
                       collect=CollectSpec([], [], scalar=True))
        with pytest.raises(PlanValidationError, match="sink"):
            validate_stage_graph(plan)

    def test_probe_before_build_detected(self):
        from repro.algebra.physical import HetPlan, Phase, CollectSpec
        stage = Stage("probe", DeviceType.CPU,
                      ops=[OpUnpack(["k"]), OpProbe("ht9", "k", []),
                           OpReduceSink([])])
        plan = HetPlan(phases=[Phase("p", [stage], [])],
                       collect=CollectSpec([], [], scalar=True))
        with pytest.raises(PlanValidationError, match="before any"):
            validate_stage_graph(plan)

    def test_hash_routing_requires_hash_pack(self):
        from repro.algebra.physical import ExchangeEdge, HetPlan, Phase, CollectSpec
        producer = Stage("p", DeviceType.CPU,
                         ops=[OpUnpack(["a"]), OpPackSink(["a"])])
        consumer = Stage("c", DeviceType.CPU,
                         ops=[OpUnpack(["a"]), OpReduceSink([])])
        edge = ExchangeEdge(producer, consumer, policy=RouterPolicy.HASH)
        plan = HetPlan(
            phases=[Phase("p", [producer, consumer], [edge])],
            collect=CollectSpec([], [], scalar=True),
        )
        with pytest.raises(PlanValidationError, match="hash-pack"):
            validate_stage_graph(plan)


class TestPlacementValidation:
    """dop/affinity vs the server's units: a typed error, not IndexError.

    The elastic controller clamps grow requests against exactly these
    limits; before this validation an oversized dop surfaced as a bare
    ``IndexError`` deep in ``Executor._instances_for``.
    """

    @staticmethod
    def _single_stage_plan(stage):
        from repro.algebra.physical import CollectSpec, HetPlan, Phase

        return HetPlan(phases=[Phase("p", [stage], [])],
                       collect=CollectSpec([], [], scalar=True))

    def test_cpu_dop_beyond_core_count_rejected(self):
        from repro.algebra.physical import validate_placement

        stage = Stage("probe", DeviceType.CPU,
                      ops=[OpUnpack(["k"]), OpReduceSink([])], dop=64)
        with pytest.raises(PlanValidationError, match="24 CPU cores"):
            validate_placement(self._single_stage_plan(stage), 24, 2)

    def test_gpu_dop_beyond_gpu_count_rejected(self):
        from repro.algebra.physical import validate_placement

        stage = Stage("probe", DeviceType.GPU,
                      ops=[OpUnpack(["k"]), OpReduceSink([])], dop=3)
        with pytest.raises(PlanValidationError, match="2 GPUs"):
            validate_placement(self._single_stage_plan(stage), 24, 2)

    def test_out_of_range_affinity_rejected(self):
        from repro.algebra.physical import validate_placement

        stage = Stage("probe", DeviceType.CPU,
                      ops=[OpUnpack(["k"]), OpReduceSink([])],
                      dop=2, affinity=[0, 99])
        with pytest.raises(PlanValidationError, match=r"\[99\]"):
            validate_placement(self._single_stage_plan(stage), 24, 2)

    def test_affinity_length_mismatch_rejected(self):
        from repro.algebra.physical import validate_placement

        stage = Stage("probe", DeviceType.CPU,
                      ops=[OpUnpack(["k"]), OpReduceSink([])],
                      dop=3, affinity=[0])
        with pytest.raises(PlanValidationError, match="affinity"):
            validate_placement(self._single_stage_plan(stage), 24, 2)

    def test_executor_raises_typed_error_not_indexerror(self, setup):
        """A hand-built plan with an oversized dop fails at the plan
        level when handed to the executor, instead of crashing mid-
        execution in the instance spawner."""
        from repro.engine.executor import Executor
        from repro.hardware.costmodel import CostModel
        from repro.memory.managers import BlockManagerSet

        from repro.algebra.physical import (
            CollectSpec, ExchangeEdge, HetPlan, Phase, SegmentSource,
        )

        server, catalog, _ = setup
        executor = Executor(server.sim, server, catalog,
                            BlockManagerSet(server),
                            CostModel(server.spec))
        source = Stage("seg", DeviceType.CPU, ops=[OpPackSink(["v"])],
                       source=SegmentSource("fact", ["v"]))
        consumer = Stage("probe", DeviceType.CPU,
                         ops=[OpUnpack(["v"]), OpReduceSink([])], dop=64)
        plan = HetPlan(
            phases=[Phase("p", [source, consumer],
                          [ExchangeEdge(source, consumer)])],
            collect=CollectSpec([], [], scalar=True),
        )
        with pytest.raises(PlanValidationError, match="CPU cores"):
            executor.execute(plan, ExecutionConfig.cpu_only(4))

    def test_sources_are_exempt(self):
        """Segmenters are control-plane only; their dop never spawns
        pinned instances and is not checked against the core count."""
        from repro.algebra.physical import (
            SegmentSource, validate_stage_placement,
        )

        source = Stage("seg", DeviceType.CPU, ops=[OpPackSink(["v"])],
                       source=SegmentSource("fact", ["v"]), dop=1)
        validate_stage_placement(source, 0, 0)  # must not raise


class TestJoinOrderOptimization:
    def test_most_selective_probe_first(self, setup):
        _, catalog, placer = setup
        catalog.register(Table("dim2", [
            Column.from_values("ek", DataType.INT32, np.arange(200) % 40),
        ]))
        # dim filtered to 25% vs dim2 unfiltered; both spill/cached equal
        plan = (scan("fact", ["k", "v"])
                .join(scan("dim2", ["ek"]).filter(col("ek") >= 0),
                      probe_key="k", build_key="ek", payload=[])
                .join(scan("dim", ["dk"]).filter(col("dk") < 10),
                      probe_key="k", build_key="dk", payload=[])
                .reduce([agg_sum(col("v"), "s")]))
        het = placer.place(plan, ExecutionConfig.cpu_only(2))
        probe_stage = next(s for s in het.phases[-1].stages if not s.is_source)
        probes = [op for op in probe_stage.ops if isinstance(op, OpProbe)]
        # ht ids are assigned root-first: ht0 = dim (selectivity 0.25),
        # ht1 = dim2 (selectivity 1.0); the selective probe moves first,
        # ahead of dim2's plan-order position
        assert [p.ht_id for p in probes] == ["ht0", "ht1"]

    def test_reordering_can_be_disabled(self, setup):
        server, catalog, _ = setup
        placer = HeterogeneousPlacer(server, catalog, optimize_join_order=False)
        catalog.register(Table("dim2", [
            Column.from_values("ek", DataType.INT32, np.arange(200) % 40),
        ]))
        plan = (scan("fact", ["k", "v"])
                .join(scan("dim2", ["ek"]), probe_key="k", build_key="ek",
                      payload=[])
                .join(scan("dim", ["dk"]).filter(col("dk") < 10),
                      probe_key="k", build_key="dk", payload=[])
                .reduce([agg_sum(col("v"), "s")]))
        het = placer.place(plan, ExecutionConfig.cpu_only(2))
        probe_stage = next(s for s in het.phases[-1].stages if not s.is_source)
        probes = [op for op in probe_stage.ops if isinstance(op, OpProbe)]
        # plan order preserved: dim2 (joined first, deepest) probes first
        assert [p.ht_id for p in probes] == ["ht1", "ht0"]
