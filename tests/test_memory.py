"""Unit tests for blocks, block managers and memory managers."""

import numpy as np
import pytest

from repro.hardware.sim import Simulator
from repro.hardware.topology import Server
from repro.memory import (
    Block,
    BlockHandle,
    BlockManagerSet,
    MemoryManager,
    OutOfDeviceMemory,
    REMOTE_BATCH_SIZE,
)
from repro.memory.managers import BlockManager


def _server():
    return Server.paper_machine(Simulator())


class TestBlock:
    def test_shape_and_bytes(self):
        block = Block({"a": np.arange(10, dtype=np.int64),
                       "b": np.arange(10, dtype=np.int32)}, "cpu:0")
        assert block.num_tuples == 10
        assert block.nbytes == 10 * 8 + 10 * 4
        assert block.logical_bytes == block.nbytes

    def test_logical_scale(self):
        block = Block({"a": np.arange(4, dtype=np.int32)}, "cpu:0",
                      logical_scale=1000.0)
        assert block.logical_bytes == pytest.approx(16 * 1000)

    def test_ragged_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            Block({"a": np.arange(2), "b": np.arange(3)}, "cpu:0")

    def test_with_node_relocates(self):
        block = Block({"a": np.arange(4)}, "cpu:0")
        moved = block.with_node("gpu:1")
        assert moved.node_id == "gpu:1"
        assert block.node_id == "cpu:0"
        assert moved.column("a") is block.column("a")  # zero-copy

    def test_missing_column_raises_helpfully(self):
        block = Block({"a": np.arange(4)}, "cpu:0")
        with pytest.raises(KeyError, match="no column"):
            block.column("z")


class TestBlockHandle:
    def test_routed_copy_preserves_metadata(self):
        block = Block({"a": np.arange(4)}, "gpu:0")
        handle = BlockHandle(block, hash_value=3, target_id=1)
        copy = handle.routed_copy()
        assert copy.hash_value == 3 and copy.target_id == 1
        assert copy.node_id == "gpu:0"
        copy.meta["x"] = 1
        assert "x" not in handle.meta


class TestMemoryManager:
    def test_allocate_and_free(self):
        server = _server()
        manager = MemoryManager(server.memory_nodes["gpu:0"])
        handle = manager.allocate(4e9, label="ht")
        assert server.memory_nodes["gpu:0"].used_bytes == pytest.approx(4e9)
        manager.free(handle)
        assert server.memory_nodes["gpu:0"].used_bytes == 0

    def test_oom_raises_with_label(self):
        server = _server()
        manager = MemoryManager(server.memory_nodes["gpu:0"])
        with pytest.raises(OutOfDeviceMemory, match="big-table"):
            manager.allocate(9e9, label="big-table")

    def test_free_all(self):
        server = _server()
        manager = MemoryManager(server.memory_nodes["cpu:0"])
        for _ in range(3):
            manager.allocate(1e9)
        manager.free_all()
        assert server.memory_nodes["cpu:0"].used_bytes == 0


class TestBlockManager:
    def test_arena_preallocated(self):
        server = _server()
        node = server.memory_nodes["cpu:0"]
        BlockManager(node, block_bytes=1 << 20, arena_blocks=100)
        assert node.used_bytes == pytest.approx(100 * (1 << 20))

    def test_acquire_release_cycle(self):
        server = _server()
        manager = BlockManager(server.memory_nodes["cpu:0"], 1 << 20, 4)
        manager.acquire(3)
        assert manager.free_blocks == 1
        manager.release(3)
        assert manager.free_blocks == 4

    def test_exhaustion_raises(self):
        server = _server()
        manager = BlockManager(server.memory_nodes["cpu:0"], 1 << 20, 2)
        manager.acquire(2)
        with pytest.raises(OutOfDeviceMemory, match="exhausted"):
            manager.acquire(1)

    def test_over_release_rejected(self):
        server = _server()
        manager = BlockManager(server.memory_nodes["cpu:0"], 1 << 20, 2)
        with pytest.raises(ValueError):
            manager.release(1)


class TestBlockManagerSet:
    def test_every_node_has_a_manager(self):
        blocks = BlockManagerSet(_server())
        assert set(blocks.managers) == {"cpu:0", "cpu:1", "gpu:0", "gpu:1"}

    def test_remote_acquire_batches_and_caches(self):
        blocks = BlockManagerSet(_server())
        manager = blocks.manager("gpu:1")
        free_before = manager.free_blocks
        # first acquire pays the round-trip and pre-acquires a batch
        latency = blocks.acquire_remote("cpu:0", "gpu:1")
        assert latency > 0
        assert manager.free_blocks == free_before - REMOTE_BATCH_SIZE
        assert manager.stats.remote_batches == 1
        # subsequent acquires are cache hits: free, no extra arena use
        for _ in range(REMOTE_BATCH_SIZE - 1):
            assert blocks.acquire_remote("cpu:0", "gpu:1") == 0.0
        assert manager.stats.remote_cache_hits == REMOTE_BATCH_SIZE - 1
        # cache drained: the next one pays again
        assert blocks.acquire_remote("cpu:0", "gpu:1") > 0

    def test_caches_are_per_local_node(self):
        blocks = BlockManagerSet(_server())
        assert blocks.acquire_remote("cpu:0", "gpu:0") > 0
        # a different local node has its own (empty) cache
        assert blocks.acquire_remote("cpu:1", "gpu:0") > 0

    def test_release_all_caches_restores_arenas(self):
        blocks = BlockManagerSet(_server())
        manager = blocks.manager("gpu:0")
        initial = manager.free_blocks
        blocks.acquire_remote("cpu:0", "gpu:0")
        blocks.release("gpu:0")  # the block actually used
        blocks.release_all_caches()
        assert manager.free_blocks == initial
