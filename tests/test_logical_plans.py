"""Unit tests for the logical plan DSL and its validation."""

import pytest

from repro.algebra.expressions import col
from repro.algebra.logical import (
    OrderSpec,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
    scan,
)
from repro.algebra.logical import AggSpec


class TestBuilders:
    def test_scan_requires_columns(self):
        with pytest.raises(ValueError):
            scan("t", [])

    def test_output_columns_flow(self):
        plan = (scan("t", ["a", "b"])
                .filter(col("a") > 1)
                .project([("c", col("a") + col("b"))]))
        # projection extends the tuple (liveness prunes dead columns later)
        assert plan.output_columns() == ["a", "b", "c"]

    def test_join_appends_payload(self):
        plan = scan("f", ["k", "v"]).join(
            scan("d", ["dk", "p", "q"]), probe_key="k", build_key="dk")
        assert plan.output_columns() == ["k", "v", "p", "q"]

    def test_join_explicit_empty_payload(self):
        plan = scan("f", ["k"]).join(
            scan("d", ["dk", "p"]), probe_key="k", build_key="dk", payload=[])
        assert plan.output_columns() == ["k"]

    def test_join_validates_keys(self):
        with pytest.raises(ValueError, match="build key"):
            scan("f", ["k"]).join(scan("d", ["dk"]), probe_key="k",
                                  build_key="nope")
        with pytest.raises(ValueError, match="probe key"):
            scan("f", ["k"]).join(scan("d", ["dk"]), probe_key="nope",
                                  build_key="dk")

    def test_join_validates_payload(self):
        with pytest.raises(ValueError, match="payload"):
            scan("f", ["k"]).join(scan("d", ["dk"]), probe_key="k",
                                  build_key="dk", payload=["ghost"])

    def test_groupby_validates_keys(self):
        with pytest.raises(ValueError, match="group keys"):
            scan("t", ["a"]).groupby(["ghost"], [agg_sum(col("a"), "s")])

    def test_groupby_output_columns(self):
        plan = scan("t", ["a", "g"]).groupby(
            ["g"], [agg_sum(col("a"), "s"), agg_count("n")])
        assert plan.output_columns() == ["g", "s", "n"]

    def test_reduce_output_columns(self):
        plan = scan("t", ["a"]).reduce(
            [agg_min(col("a"), "lo"), agg_max(col("a"), "hi")])
        assert plan.output_columns() == ["lo", "hi"]

    def test_agg_kind_validation(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            AggSpec("median", col("a"), "m")

    def test_order_by_and_take_are_non_destructive(self):
        base = scan("t", ["a"]).groupby([], [])  # degenerate but legal shape
        ordered = base.order_by("a").take(5)
        assert ordered.limit == 5
        assert base.limit is None
        assert ordered.order == [OrderSpec("a")]

    def test_order_by_accepts_specs(self):
        plan = scan("t", ["a"]).order_by(OrderSpec("a", ascending=False))
        assert plan.order[0].ascending is False

    def test_scans_enumerates_probe_side_first(self):
        plan = (scan("fact", ["k1", "k2"])
                .join(scan("d1", ["a"]), probe_key="k1", build_key="a")
                .join(scan("d2", ["b"]), probe_key="k2", build_key="b"))
        assert [s.table for s in plan.scans()] == ["fact", "d1", "d2"]
