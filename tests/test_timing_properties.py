"""Timing-model properties: the behaviours the figures are built from.

These assert *simulated-time* relationships on small workloads — the
micro-level counterparts of the paper's macro observations.
"""

import numpy as np
import pytest

from repro import ExecutionConfig, Proteus, agg_count, agg_sum, col, scan
from repro.storage import Column, DataType, Table


def _engine(rows=50_000, scale=50_000.0, seed=5, segment_rows=2048):
    rng = np.random.default_rng(seed)
    engine = Proteus(segment_rows=segment_rows)
    engine.register(Table("t", [
        Column.from_values("a", DataType.INT64, rng.integers(0, 100, rows)),
        Column.from_values("k", DataType.INT32, rng.integers(0, 1000, rows)),
    ]))
    engine.register(Table("d", [
        Column.from_values("dk", DataType.INT32, np.arange(1000)),
    ]))
    engine.catalog.set_logical_scale("t", scale)   # ~30 GB stream
    return engine


SUM = scan("t", ["a"]).reduce([agg_sum(col("a"), "s")])
JOIN = (scan("t", ["a", "k"])
        .join(scan("d", ["dk"]), probe_key="k", build_key="dk", payload=[])
        .reduce([agg_count("n")]))


def test_cpu_scaling_is_monotone():
    times = [
        _engine().query(SUM, ExecutionConfig.cpu_only(n, block_tuples=512)).seconds
        for n in (1, 2, 4, 8, 16)
    ]
    assert all(a > b for a, b in zip(times, times[1:]))
    # near-linear early on
    assert times[0] / times[2] > 3.2


def test_cpu_scaling_saturates_at_memory_bandwidth():
    """Speed-up flattens once the socket DRAM is saturated (Figure 7)."""
    t16 = _engine().query(SUM, ExecutionConfig.cpu_only(16, block_tuples=512)).seconds
    t24 = _engine().query(SUM, ExecutionConfig.cpu_only(24, block_tuples=512)).seconds
    assert t16 / t24 < 1.15
    throughput = 50_000 * 8 * 50_000 / t24
    assert 70e9 < throughput < 95e9  # machine bandwidth ~90.6 GB/s


def test_two_gpus_double_pcie_throughput():
    one = _engine().query(SUM, ExecutionConfig.gpu_only([0], block_tuples=512)).seconds
    two = _engine().query(SUM, ExecutionConfig.gpu_only([0, 1], block_tuples=512)).seconds
    assert one / two == pytest.approx(2.0, rel=0.15)
    # and each link runs near its 12 GB/s
    throughput = 50_000 * 8 * 50_000 / one
    assert 9e9 < throughput < 12.5e9


def test_gpu_streaming_is_pcie_bound_not_hbm_bound():
    """Out-of-core GPU time tracks the PCIe rate, not the 320 GB/s HBM."""
    seconds = _engine().query(SUM, ExecutionConfig.gpu_only([0, 1],
                                                            block_tuples=512)).seconds
    stream = 50_000 * 8 * 50_000
    assert seconds > stream / 26e9  # cannot beat the aggregate links
    assert seconds < stream / 18e9  # but overlap keeps them nearly full


def test_transfers_overlap_kernels():
    """Prefetching mem-move: makespan ~ transfer time, not transfer+kernel."""
    engine = _engine()
    result = engine.query(SUM, ExecutionConfig.gpu_only([0], block_tuples=512))
    stream = 50_000 * 8 * 50_000
    transfer_floor = stream / 12e9
    # allow init + one un-overlapped block, but not 2x (serial would be
    # transfer + kernel per block)
    assert result.seconds < transfer_floor * 1.25


def test_hybrid_at_least_as_fast_as_best_single_device():
    engine = _engine()
    cpu = engine.query(JOIN, ExecutionConfig.cpu_only(24, block_tuples=512)).seconds
    gpu = engine.query(JOIN, ExecutionConfig.gpu_only([0, 1], block_tuples=512)).seconds
    hybrid = engine.query(JOIN, ExecutionConfig.hybrid(24, [0, 1],
                                                       block_tuples=512)).seconds
    assert hybrid <= min(cpu, gpu) * 1.1


def test_hetexchange_overhead_shrinks_with_input():
    """Figure 8 in miniature: relative overhead decreases with size."""
    overheads = []
    for scale in (200.0, 20_000.0):
        with_het = _engine(scale=scale).query(
            SUM, ExecutionConfig.cpu_only(1, block_tuples=512)).seconds
        bare = _engine(scale=scale).query(
            SUM, ExecutionConfig.bare_cpu(block_tuples=512)).seconds
        overheads.append(with_het / bare - 1)
    assert overheads[0] > overheads[1]
    assert overheads[1] < 0.1


def test_interleaved_placement_beats_single_socket():
    """NUMA: one socket's DRAM bounds a 24-core scan at half the rate."""
    from repro.storage.table import Placement, Segment

    rng = np.random.default_rng(5)
    rows = 50_000
    values = rng.integers(0, 100, rows)

    def run(single_socket: bool) -> float:
        engine = Proteus(segment_rows=2048)
        table = Table("t", [Column.from_values("a", DataType.INT64, values)])
        if single_socket:
            placement = Placement([Segment("t", 0, rows, "cpu:0")])
            engine.register(table, placement)
        else:
            engine.register(table)
        engine.catalog.set_logical_scale("t", 50_000.0)
        return engine.query(SUM, ExecutionConfig.cpu_only(
            24, block_tuples=512)).seconds

    assert run(single_socket=True) > run(single_socket=False) * 1.6


def test_simulated_time_independent_of_wall_time():
    """Determinism: identical runs give identical simulated times."""
    a = _engine().query(JOIN, ExecutionConfig.hybrid(6, [0, 1],
                                                     block_tuples=512)).seconds
    b = _engine().query(JOIN, ExecutionConfig.hybrid(6, [0, 1],
                                                     block_tuples=512)).seconds
    assert a == b
