"""Elastic degree of parallelism: differential correctness + accounting.

The elastic controller changes *how many CPU workers* run a query's
remaining waves, never *what* they compute: every elastic run — shrink
mid-query, grow mid-query, clamped at min/max, resize storms mixed with
preemption — must return exactly the rows of the independent reference
executor, and the admission budget must conserve across every resize
(only the compute delta moves; memory stays charged).

The deterministic forcing trick: the controller's decisions are pure
threshold comparisons against the sampled DRAM utilization, so a policy
with ``target_utilization ~ 0`` always sees "contended" (shrink every
boundary) and one with a target far above 1.0 always sees
"under-utilized" (grow every boundary).  No mocking seam is needed.
"""

import math

import pytest

from repro import ElasticPolicy, EngineServer, ExecutionConfig, ResourceBudget
from repro.algebra.physical import PlanValidationError
from repro.engine.config import QoS
from repro.engine.reference import ReferenceExecutor
from repro.ssb import SSB_QUERY_IDS, generate_ssb, load_ssb, ssb_query

#: forces a shrink at every phase boundary (any nonzero utilization
#: exceeds the target); tiny window so the first boundary already has a
#: closed sample
ALWAYS_SHRINK = ElasticPolicy(target_utilization=1e-9, window_seconds=1e-4)
#: forces a grow at every boundary (utilization can never reach the
#: target, and the grow threshold equals the target)
ALWAYS_GROW = ElasticPolicy(
    target_utilization=50.0, grow_below=1.0, max_dop=12, window_seconds=1e-4
)

STORM_BACKGROUND = ["Q4.1", "Q4.2", "Q3.1", "Q3.2", "Q4.3", "Q3.3"]
STORM_INTERACTIVE = ["Q1.1", "Q1.2", "Q1.3"]


@pytest.fixture(scope="module")
def tables():
    return generate_ssb(scale_factor=0.005, seed=13)


@pytest.fixture(scope="module")
def reference(tables):
    ref = ReferenceExecutor(tables)
    return {qid: ref.execute(ssb_query(qid)) for qid in SSB_QUERY_IDS}


def _server(tables, **kwargs) -> EngineServer:
    server = EngineServer(segment_rows=2048, elastic=True, **kwargs)
    load_ssb(server.engine, tables=tables)
    return server


def _submit_all(server, config, query_ids):
    sessions = []
    for qid in query_ids:
        sessions.append(server.submit(ssb_query(qid), config, name=qid))
    return sessions


class TestDifferentialCorrectness:
    """Elastic results == solo reference results, for all 13 queries."""

    def test_shrink_mid_query_matches_reference(self, tables, reference):
        server = _server(tables, max_concurrent=3, elastic_policy=ALWAYS_SHRINK)
        config = ExecutionConfig.cpu_only(6, block_tuples=4096)
        sessions = _submit_all(server, config, SSB_QUERY_IDS)
        report = server.run()
        assert report.resizes == len(SSB_QUERY_IDS)
        for session in sessions:
            assert session.status == "done", (session.name, session.error)
            expected = sorted(reference[session.name])
            assert sorted(session.result.rows) == expected, session.name
        # every query shrank: trajectories strictly decrease 6 -> 3
        for path in report.dop_trajectories().values():
            assert path[0] == 6
            assert all(b < a for a, b in zip(path, path[1:]))
        server.check_conservation()

    def test_grow_mid_query_matches_reference(self, tables, reference):
        server = _server(tables, max_concurrent=2, elastic_policy=ALWAYS_GROW)
        config = ExecutionConfig.cpu_only(2, block_tuples=4096)
        sessions = _submit_all(server, config, SSB_QUERY_IDS)
        report = server.run()
        assert report.resizes == len(SSB_QUERY_IDS)
        for session in sessions:
            assert session.status == "done", (session.name, session.error)
            expected = sorted(reference[session.name])
            assert sorted(session.result.rows) == expected, session.name
        for path in report.dop_trajectories().values():
            assert path[0] == 2
            assert all(b > a for a, b in zip(path, path[1:]))
            assert max(path) <= 12
        server.check_conservation()

    def test_hybrid_queries_resize_cpu_side_only(self, tables, reference):
        """GPU stages are pinned to the hash-table domains built in
        earlier phases; only the CPU worker set is elastic."""
        server = _server(tables, max_concurrent=2, elastic_policy=ALWAYS_SHRINK)
        config = ExecutionConfig.hybrid(6, [0, 1], block_tuples=4096)
        sessions = _submit_all(server, config, SSB_QUERY_IDS[:6])
        report = server.run()
        assert report.resizes >= 1
        for session in sessions:
            assert session.status == "done", (session.name, session.error)
            expected = sorted(reference[session.name])
            assert sorted(session.result.rows) == expected, session.name
            # the admitted GPU set never changed
            assert session.current_config.gpu_ids == (0, 1)
        server.check_conservation()

    def test_gpu_only_queries_are_never_resized(self, tables, reference):
        server = _server(tables, max_concurrent=2, elastic_policy=ALWAYS_GROW)
        config = ExecutionConfig.gpu_only([0, 1], block_tuples=4096)
        sessions = _submit_all(server, config, SSB_QUERY_IDS[:4])
        report = server.run()
        assert report.resizes == 0
        assert report.dop_trajectories() == {}
        for session in sessions:
            assert session.status == "done", (session.name, session.error)
            expected = sorted(reference[session.name])
            assert sorted(session.result.rows) == expected, session.name
        server.check_conservation()


class TestClamping:
    def test_min_equals_max_pins_the_dop(self, tables, reference):
        """min_dop == max_dop == admitted dop: the controller has no
        room in either direction, whatever the utilization says."""
        policies = (
            ALWAYS_SHRINK.derive(min_dop=4, max_dop=4),
            ALWAYS_GROW.derive(min_dop=4, max_dop=4),
        )
        for policy in policies:
            server = _server(tables, max_concurrent=2, elastic_policy=policy)
            config = ExecutionConfig.cpu_only(4, block_tuples=4096)
            sessions = _submit_all(server, config, SSB_QUERY_IDS[:4])
            report = server.run()
            assert report.resizes == 0
            for session in sessions:
                assert session.status == "done"
                expected = sorted(reference[session.name])
                assert sorted(session.result.rows) == expected, session.name
                assert session.current_config.cpu_workers == 4
            server.check_conservation()

    def test_shrink_stops_at_min_dop(self, tables, reference):
        server = _server(
            tables,
            max_concurrent=2,
            elastic_policy=ALWAYS_SHRINK.derive(min_dop=3),
        )
        config = ExecutionConfig.cpu_only(6, block_tuples=4096)
        sessions = _submit_all(server, config, SSB_QUERY_IDS[:4])
        report = server.run()
        for path in report.dop_trajectories().values():
            assert min(path) >= 3
        for session in sessions:
            expected = sorted(reference[session.name])
            assert sorted(session.result.rows) == expected, session.name
        server.check_conservation()

    def test_grow_is_clamped_by_budget_headroom(self, tables, reference):
        """An always-grow policy can only expand into *freed* capacity:
        the budget's peak never exceeds its core cap, however hard the
        controller pushes."""
        server = _server(
            tables,
            max_concurrent=2,
            elastic_policy=ALWAYS_GROW,
            budget=ResourceBudget(cpu_cores=8),
        )
        config = ExecutionConfig.cpu_only(4, block_tuples=4096)
        sessions = _submit_all(server, config, SSB_QUERY_IDS[:4])
        report = server.run()
        assert server.budget.peak["cpu_cores"] <= 8.0
        # while both 4-core queries were running the budget was full, so
        # any grow that did happen used capacity a finished query freed
        for session in sessions:
            for _, dop in session.dop_trajectory[1:]:
                assert dop <= 8
        assert report.resizes <= len(sessions)
        for session in sessions:
            assert session.status == "done"
            expected = sorted(reference[session.name])
            assert sorted(session.result.rows) == expected, session.name
        server.check_conservation()

    def test_grow_respects_physical_cores_with_uncapped_budget(self, tables):
        """With no cpu_cores cap in the budget, the growth headroom is
        the machine's cores minus what admitted queries already hold:
        three co-resident dop-8 queries must not collectively grow past
        the 24 physical cores."""
        server = _server(
            tables,
            max_concurrent=3,
            elastic_policy=ALWAYS_GROW.derive(max_dop=24),
            budget=ResourceBudget(dram_bytes=1e15),
        )
        config = ExecutionConfig.cpu_only(8, block_tuples=4096)
        _submit_all(server, config, SSB_QUERY_IDS[:6])
        server.run()
        assert server.budget.peak["cpu_cores"] <= 24.0
        server.check_conservation()

    def test_grow_never_exceeds_server_cores(self, tables):
        """max_dop above the machine's core count is clamped to it."""
        server = _server(
            tables,
            max_concurrent=1,
            elastic_policy=ALWAYS_GROW.derive(max_dop=4096),
        )
        config = ExecutionConfig.cpu_only(23, block_tuples=4096)
        session = server.submit(ssb_query("Q1.1"), config)
        server.run()
        assert session.status == "done"
        assert session.current_config.cpu_workers <= len(server.server.cores)
        server.check_conservation()


class TestBudgetAccounting:
    def test_resize_storm_conserves_budget(self, tables, reference):
        """Shrinks, preemption pauses/resumes and open-loop arrivals in
        one drive: the budget must drain to exactly zero afterwards."""
        server = _server(
            tables,
            max_concurrent=2,
            elastic_policy=ALWAYS_SHRINK,
            budget=ResourceBudget(cpu_cores=12),
        )
        config = ExecutionConfig.cpu_only(6, block_tuples=4096)
        background = []
        for index, qid in enumerate(STORM_BACKGROUND):
            background.append(
                server.submit(
                    ssb_query(qid),
                    config,
                    name=f"bg-{index}",
                    qos=QoS.background(),
                )
            )
        server.spawn_open_loop(
            [ssb_query(qid) for qid in STORM_INTERACTIVE],
            config,
            rate_qps=100.0,
            arrivals=6,
            seed=5,
            qos=QoS.interactive(deadline_seconds=0.2),
        )
        report = server.run()
        assert report.resizes >= len(background)
        for session in report.completed:
            if session.name.startswith("bg-"):
                qid = STORM_BACKGROUND[int(session.name.split("-")[1])]
            else:
                index = int(session.name.split("-")[1])
                qid = STORM_INTERACTIVE[index % len(STORM_INTERACTIVE)]
            expected = sorted(reference[qid])
            assert sorted(session.result.rows) == expected, session.name
        server.check_conservation()
        allocated = server.budget.total_allocated["cpu_cores"]
        assert allocated == server.budget.total_released["cpu_cores"]

    def test_shrink_frees_cores_for_queued_sessions(self, tables):
        """The freed compute delta is immediately admissible: with a
        12-core budget and 6-core queries, the third query gets in as
        soon as the first two shrink to 3 workers each."""
        server = _server(
            tables,
            max_concurrent=8,
            elastic_policy=ALWAYS_SHRINK.derive(min_dop=3),
            budget=ResourceBudget(cpu_cores=12),
        )
        config = ExecutionConfig.cpu_only(6, block_tuples=4096)
        sessions = []
        for i in range(3):
            sessions.append(
                server.submit(ssb_query("Q4.1"), config, name=f"q{i}")
            )
        server.run()
        assert all(s.status == "done" for s in sessions)
        # the third query was admitted before either of the first two
        # finished — only possible because shrinking released cores
        third = sessions[2]
        assert third.admit_time < min(s.finish_time for s in sessions[:2])
        server.check_conservation()

    def test_deterministic_for_fixed_workload(self, tables):
        def drive():
            server = _server(
                tables, max_concurrent=3, elastic_policy=ALWAYS_SHRINK
            )
            config = ExecutionConfig.cpu_only(6, block_tuples=4096)
            sessions = _submit_all(server, config, SSB_QUERY_IDS[:6])
            report = server.run()
            return (
                report.makespan,
                report.dop_trajectories(),
                [tuple(s.result.rows) for s in sessions],
            )

        assert drive() == drive()


class TestPolicyValidation:
    def test_policy_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="min_dop"):
            ElasticPolicy(min_dop=0)
        with pytest.raises(ValueError, match="max_dop"):
            ElasticPolicy(min_dop=4, max_dop=2)
        with pytest.raises(ValueError, match="target_utilization"):
            ElasticPolicy(target_utilization=0.0)
        with pytest.raises(ValueError, match="grow_below"):
            ElasticPolicy(grow_below=1.5)
        with pytest.raises(ValueError, match="window_seconds"):
            ElasticPolicy(window_seconds=0.0)

    def test_shorthands_and_policy_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            EngineServer(elastic=True, elastic_policy=ElasticPolicy(), min_dop=2)

    def test_knobs_without_elastic_switch_are_rejected(self):
        """Knobs without elastic=True would be silently inert — the
        caller would believe elasticity is active and get fixed dop."""
        with pytest.raises(ValueError, match="elastic=True"):
            EngineServer(max_dop=8)
        with pytest.raises(ValueError, match="elastic=True"):
            EngineServer(elastic_policy=ElasticPolicy(target_utilization=0.7))

    def test_shorthand_knobs_build_the_policy(self):
        server = EngineServer(
            segment_rows=2048,
            elastic=True,
            min_dop=2,
            max_dop=8,
            target_utilization=0.6,
        )
        assert server.elastic_policy == ElasticPolicy(
            min_dop=2, max_dop=8, target_utilization=0.6
        )


class TestStageReDerivation:
    """Stage.with_dop keeps identity where it matters."""

    def test_with_dop_preserves_template_and_signature(self, tables):
        from repro.jit.cache import stage_signature

        server = _server(tables, max_concurrent=1)
        config = ExecutionConfig.cpu_only(6, block_tuples=4096)
        het = server.placer.place(ssb_query("Q1.1"), config)
        stage = next(s for s in het.all_stages() if s.dop == 6)
        resized = stage.with_dop(3, [0, 12, 1])
        assert resized.stage_id == stage.stage_id
        assert resized.ops is stage.ops
        assert resized.dop == 3 and resized.affinity == [0, 12, 1]
        width = server.executor._column_widths().__getitem__
        assert stage_signature(resized, width) == stage_signature(stage, width)

    def test_with_dop_validates_arguments(self, tables):
        server = _server(tables, max_concurrent=1)
        config = ExecutionConfig.cpu_only(4, block_tuples=4096)
        het = server.placer.place(ssb_query("Q1.1"), config)
        stage = next(s for s in het.all_stages() if not s.is_source)
        with pytest.raises(PlanValidationError, match="dop 0"):
            stage.with_dop(0)
        with pytest.raises(PlanValidationError, match="affinity"):
            stage.with_dop(3, [0])

    def test_with_cpu_dop_rebuilds_edges_consistently(self, tables):
        server = _server(tables, max_concurrent=1)
        config = ExecutionConfig.hybrid(6, [0, 1], block_tuples=4096)
        het = server.placer.place(ssb_query("Q2.1"), config)
        probe = het.phases[-1]
        resized = probe.with_cpu_dop(3, [0, 12, 1])
        by_id = {s.stage_id: s for s in resized.stages}
        for edge in resized.edges:
            # edges reference the rebuilt stage objects, not stale ones
            assert by_id[edge.producer.stage_id] is edge.producer
            assert by_id[edge.consumer.stage_id] is edge.consumer
        consumers = [s for s in resized.stages if not s.is_source]
        cpu = [s for s in consumers if s.device.value == "cpu"]
        gpu = [s for s in consumers if s.device.value == "gpu"]
        assert all(s.dop == 3 for s in cpu)
        assert all(s.dop == 2 for s in gpu)  # GPU side untouched

    def test_monitor_requires_closed_window(self, tables):
        """Before the first window closes the controller must not act."""
        server = _server(tables, max_concurrent=1)
        assert server._monitor.sample() == {}
        assert server._monitor.dram_utilization() is None


class TestSessionDemandTracking:
    def test_resized_demand_rides_through_preemption(self, tables):
        """A session shrunk to 3 workers then paused must release the
        *resized* compute share — over- or under-releasing would trip
        the budget's conservation check at the end of the drive."""
        server = _server(
            tables,
            max_concurrent=2,
            elastic_policy=ALWAYS_SHRINK.derive(min_dop=3),
            budget=ResourceBudget(cpu_cores=12),
        )
        config = ExecutionConfig.cpu_only(6, block_tuples=4096)
        victims = []
        for i, qid in enumerate(["Q4.1", "Q4.2"]):
            victims.append(
                server.submit(
                    ssb_query(qid),
                    config,
                    name=f"bg{i}",
                    qos=QoS.background(),
                )
            )
        server.spawn_open_loop(
            [ssb_query("Q1.1")],
            config,
            rate_qps=200.0,
            arrivals=3,
            seed=9,
            qos=QoS.interactive(deadline_seconds=0.1),
        )
        report = server.run()
        assert report.resizes >= 1
        for session in victims:
            assert session.demand.cpu_cores == 3
        server.check_conservation()

    def test_resize_updates_demand_only_in_compute(self, tables):
        server = _server(tables, max_concurrent=1, elastic_policy=ALWAYS_SHRINK)
        config = ExecutionConfig.cpu_only(6, block_tuples=4096)
        session = server.submit(ssb_query("Q2.1"), config)
        before = session.demand
        server.run()
        after = session.demand
        assert after.cpu_cores < before.cpu_cores
        # memory stays charged exactly as admitted
        assert after.dram_bytes == before.dram_bytes
        assert after.hbm_bytes == before.hbm_bytes
        assert after.pcie_bytes == before.pcie_bytes
        assert math.isclose(
            server.budget.total_allocated["cpu_cores"],
            server.budget.total_released["cpu_cores"],
        )
        server.check_conservation()
