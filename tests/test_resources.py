"""Unit tests for FIFO and processor-sharing bandwidth resources."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.resources import BandwidthResource, FifoResource
from repro.hardware.sim import SimulationError, Simulator


class TestFifoResource:
    def test_exclusive_service(self):
        sim = Simulator()
        resource = FifoResource(sim, "core")
        order = []

        def worker(tag, hold):
            grant = resource.acquire()
            yield grant
            order.append((tag, sim.now))
            yield sim.timeout(hold)
            resource.release()

        sim.process(worker("a", 2))
        sim.process(worker("b", 1))
        sim.run()
        assert order == [("a", 0), ("b", 2)]

    def test_release_idle_raises(self):
        sim = Simulator()
        resource = FifoResource(sim, "core")
        with pytest.raises(SimulationError):
            resource.release()

    def test_multi_slot(self):
        sim = Simulator()
        resource = FifoResource(sim, "pool", slots=2)
        starts = []

        def worker(tag):
            yield resource.acquire()
            starts.append((tag, sim.now))
            yield sim.timeout(1)
            resource.release()

        for tag in "abc":
            sim.process(worker(tag))
        sim.run()
        assert starts == [("a", 0), ("b", 0), ("c", 1)]

    def test_busy_time_accounting(self):
        sim = Simulator()
        resource = FifoResource(sim, "core")

        def worker():
            yield resource.acquire()
            yield sim.timeout(3)
            resource.release()

        sim.process(worker())
        sim.run()
        assert resource.total_busy_time == pytest.approx(3)
        assert resource.busy_time == pytest.approx(3)

    def test_busy_time_includes_open_interval_mid_run(self):
        """``total_busy_time`` folds only when the last holder releases;
        a mid-run sample (a scheduler's utilization probe at a phase
        boundary) must still see the in-flight interval."""
        sim = Simulator()
        resource = FifoResource(sim, "core")
        samples = []

        def worker():
            yield resource.acquire()
            yield sim.timeout(2)
            # mid-hold: the raw counter is still zero, busy_time is not
            samples.append((resource.total_busy_time, resource.busy_time))
            yield sim.timeout(1)
            resource.release()

        sim.process(worker())
        sim.run()
        assert samples == [(0.0, pytest.approx(2.0))]
        assert resource.busy_time == pytest.approx(3.0)

    def test_busy_time_counts_overlapping_holds_once(self):
        """Two holders on a multi-slot resource: busy time is wall-clock
        'at least one slot held', not the sum of the holds."""
        sim = Simulator()
        resource = FifoResource(sim, "pool", slots=2)

        def worker(start, hold):
            yield sim.timeout(start)
            yield resource.acquire()
            yield sim.timeout(hold)
            resource.release()

        sim.process(worker(0, 3))
        sim.process(worker(1, 4))  # overlaps 1..3, extends to 5
        sim.run()
        assert resource.busy_time == pytest.approx(5.0)

    def test_utilization_over_horizon(self):
        sim = Simulator()
        resource = FifoResource(sim, "core")

        def worker():
            yield sim.timeout(1)
            yield resource.acquire()
            yield sim.timeout(3)
            resource.release()

        sim.process(worker())
        sim.run()
        assert resource.utilization(4.0) == pytest.approx(0.75)
        assert resource.utilization(0.0) == 0.0


class TestBandwidthResource:
    def test_single_job_runs_at_cap(self):
        sim = Simulator()
        bus = BandwidthResource(sim, capacity=100.0)

        def proc():
            yield bus.submit(50.0, rate_cap=10.0)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(5.0)

    def test_uncapped_job_uses_full_capacity(self):
        sim = Simulator()
        bus = BandwidthResource(sim, capacity=100.0)

        def proc():
            yield bus.submit(200.0)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(2.0)

    def test_two_jobs_share_fairly(self):
        sim = Simulator()
        bus = BandwidthResource(sim, capacity=100.0)
        finishes = {}

        def proc(tag, work):
            yield bus.submit(work)
            finishes[tag] = sim.now

        sim.process(proc("a", 100.0))
        sim.process(proc("b", 100.0))
        sim.run()
        # both run at 50 until one finishes; equal work -> equal finish
        assert finishes["a"] == pytest.approx(2.0)
        assert finishes["b"] == pytest.approx(2.0)

    def test_capped_job_leaves_capacity_for_others(self):
        sim = Simulator()
        bus = BandwidthResource(sim, capacity=100.0)
        finishes = {}

        def proc(tag, work, cap):
            yield bus.submit(work, rate_cap=cap)
            finishes[tag] = sim.now

        sim.process(proc("capped", 10.0, 10.0))   # rate 10 -> done at 1.0
        sim.process(proc("greedy", 90.0, None))   # rate 90 -> done at 1.0
        sim.run()
        assert finishes["capped"] == pytest.approx(1.0)
        assert finishes["greedy"] == pytest.approx(1.0)

    def test_weighted_share(self):
        sim = Simulator()
        bus = BandwidthResource(sim, capacity=90.0)
        finishes = {}

        def proc(tag, work, weight):
            yield bus.submit(work, weight=weight)
            finishes[tag] = sim.now

        # weight 2 gets 60, weight 1 gets 30 (until the first finishes)
        sim.process(proc("heavy", 60.0, 2.0))
        sim.process(proc("light", 30.0, 1.0))
        sim.run()
        assert finishes["heavy"] == pytest.approx(1.0)
        assert finishes["light"] == pytest.approx(1.0)

    def test_late_arrival_reallocates(self):
        sim = Simulator()
        bus = BandwidthResource(sim, capacity=100.0)
        finishes = {}

        def first():
            yield bus.submit(100.0)
            finishes["first"] = sim.now

        def second():
            yield sim.timeout(0.5)  # first has served 50 by now
            yield bus.submit(25.0)
            finishes["second"] = sim.now

        sim.process(first())
        sim.process(second())
        sim.run()
        # from t=0.5 both run at 50: second finishes at 1.0, then first
        # finishes its remaining 25 at rate 100 -> 1.25
        assert finishes["second"] == pytest.approx(1.0)
        assert finishes["first"] == pytest.approx(1.25)

    def test_zero_work_completes_immediately(self):
        sim = Simulator()
        bus = BandwidthResource(sim, capacity=10.0)
        event = bus.submit(0.0)
        sim.run()
        assert event.triggered

    def test_invalid_arguments(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            BandwidthResource(sim, capacity=0)
        bus = BandwidthResource(sim, capacity=10.0)
        with pytest.raises(SimulationError):
            bus.submit(-1.0)
        with pytest.raises(SimulationError):
            bus.submit(1.0, rate_cap=0)
        with pytest.raises(SimulationError):
            bus.submit(1.0, weight=0)

    def test_busy_time_tracks_active_periods(self):
        sim = Simulator()
        bus = BandwidthResource(sim, capacity=10.0)

        def proc():
            yield bus.submit(10.0)           # busy 0..1
            yield sim.timeout(5)             # idle 1..6
            yield bus.submit(20.0)           # busy 6..8
            return bus.busy_time

        assert sim.run_process(proc()) == pytest.approx(3.0)


@settings(max_examples=40, deadline=None)
@given(
    works=st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=10),
    capacity=st.floats(min_value=1.0, max_value=1e3),
)
def test_conservation_total_time_bounded_by_work_over_capacity(works, capacity):
    """Makespan >= total work / capacity and >= the longest single job at
    its own share; all jobs complete."""
    sim = Simulator()
    bus = BandwidthResource(sim, capacity=capacity)
    done = []

    def proc(work):
        yield bus.submit(work)
        done.append(sim.now)

    for work in works:
        sim.process(proc(work))
    sim.run()
    assert len(done) == len(works)
    lower_bound = sum(works) / capacity
    assert sim.now >= lower_bound * (1 - 1e-9)
    assert bus.total_work_served == pytest.approx(sum(works), rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    works=st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=2, max_size=8),
    caps=st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=2, max_size=8),
)
def test_rate_caps_respected(works, caps):
    """No job finishes faster than work / its own cap."""
    sim = Simulator()
    bus = BandwidthResource(sim, capacity=1e3)
    finishes = {}
    pairs = list(zip(works, caps))

    def proc(index, work, cap):
        start = sim.now
        yield bus.submit(work, rate_cap=cap)
        finishes[index] = sim.now - start

    for index, (work, cap) in enumerate(pairs):
        sim.process(proc(index, work, cap))
    sim.run()
    for index, (work, cap) in enumerate(pairs):
        assert finishes[index] >= work / cap * (1 - 1e-9)
