"""Integration tests for the executor and the Proteus facade."""

import numpy as np
import pytest

from repro import ExecutionConfig, OrderSpec, Proteus, agg_count, agg_sum, col, scan
from repro.engine.executor import QueryError
from repro.engine.reference import ReferenceExecutor
from repro.hardware.specs import ServerSpec
from repro.storage import Column, DataType, Table

N = 50_000


@pytest.fixture(scope="module")
def tables():
    rng = np.random.default_rng(11)
    fact = Table("fact", [
        Column.from_values("k", DataType.INT32, rng.integers(0, 500, N)),
        Column.from_values("k2", DataType.INT32, rng.integers(0, 50, N)),
        Column.from_values("v", DataType.INT64, rng.integers(0, 1000, N)),
        Column.from_values("w", DataType.INT32, rng.integers(0, 100, N)),
    ])
    dim = Table("dim", [
        Column.from_values("dk", DataType.INT32, np.arange(500)),
        Column.from_values("g", DataType.INT32, np.arange(500) % 9),
        Column.from_strings("name", [f"g{i % 9}" for i in range(500)]),
    ])
    dim2 = Table("dim2", [
        Column.from_values("ek", DataType.INT32, np.arange(50)),
        Column.from_values("h", DataType.INT32, np.arange(50) % 4),
    ])
    return {"fact": fact, "dim": dim, "dim2": dim2}


def _engine(tables, **kw):
    engine = Proteus(segment_rows=4096, **kw)
    for table in tables.values():
        engine.register(table)
    return engine


CONFIGS = [
    ("cpu-1", ExecutionConfig.cpu_only(1, block_tuples=2048)),
    ("cpu-8", ExecutionConfig.cpu_only(8, block_tuples=2048)),
    ("gpu-1", ExecutionConfig.gpu_only([1], block_tuples=2048)),
    ("gpu-2", ExecutionConfig.gpu_only([0, 1], block_tuples=2048)),
    ("hybrid", ExecutionConfig.hybrid(6, [0, 1], block_tuples=2048)),
    ("bare-cpu", ExecutionConfig.bare_cpu(block_tuples=2048)),
    ("bare-gpu", ExecutionConfig.bare_gpu(0, block_tuples=2048)),
]


@pytest.mark.parametrize("label,config", CONFIGS)
def test_scalar_reduce_matches_reference(tables, label, config):
    plan = (scan("fact", ["v", "w"])
            .filter(col("w") < 50)
            .reduce([agg_sum(col("v"), "total"), agg_count("n")]))
    result = _engine(tables).query(plan, config)
    expected = ReferenceExecutor(tables).scalar(plan)
    assert result.value("total") == expected["total"]
    assert result.value("n") == expected["n"]
    assert result.seconds > 0


@pytest.mark.parametrize("label,config", CONFIGS)
def test_join_groupby_matches_reference(tables, label, config):
    plan = (scan("fact", ["k", "k2", "v"])
            .join(scan("dim", ["dk", "g"]).filter(col("dk") < 400),
                  probe_key="k", build_key="dk", payload=["g"])
            .join(scan("dim2", ["ek", "h"]),
                  probe_key="k2", build_key="ek", payload=["h"])
            .groupby(["g", "h"], [agg_sum(col("v"), "s"), agg_count("n")])
            .order_by("g", "h"))
    result = _engine(tables).query(plan, config)
    expected = ReferenceExecutor(tables).execute(plan)
    assert result.columns == ["g", "h", "s", "n"]
    assert result.rows == expected


def test_string_group_keys_are_decoded(tables):
    plan = (scan("fact", ["k", "v"])
            .join(scan("dim", ["dk", "name"]),
                  probe_key="k", build_key="dk", payload=["name"])
            .groupby(["name"], [agg_sum(col("v"), "s")])
            .order_by("name"))
    result = _engine(tables).query(plan, ExecutionConfig.cpu_only(4, block_tuples=2048))
    assert [row[0] for row in result.rows] == sorted({f"g{i}" for i in range(9)})
    assert result.rows == ReferenceExecutor(tables).execute(plan)


def test_row_collection_plan(tables):
    plan = (scan("fact", ["k", "v"])
            .filter(col("v") > 995)
            .join(scan("dim", ["dk", "name"]),
                  probe_key="k", build_key="dk", payload=["name"]))
    config = ExecutionConfig.hybrid(4, [0], block_tuples=2048)
    result = _engine(tables).query(plan, config)
    expected = ReferenceExecutor(tables).execute(plan)
    assert sorted(result.rows) == sorted(expected)
    assert result.columns == ["k", "v", "name"]


def test_order_by_desc_and_limit(tables):
    plan = (scan("fact", ["k", "v"])
            .join(scan("dim", ["dk", "g"]), probe_key="k", build_key="dk",
                  payload=["g"])
            .groupby(["g"], [agg_sum(col("v"), "s")])
            .order_by(OrderSpec("s", ascending=False))
            .take(3))
    result = _engine(tables).query(plan, ExecutionConfig.cpu_only(2, block_tuples=2048))
    sums = [row[1] for row in result.rows]
    assert len(sums) == 3
    assert sums == sorted(sums, reverse=True)


def test_profile_accounting(tables):
    plan = (scan("fact", ["k", "v"])
            .join(scan("dim", ["dk"]), probe_key="k", build_key="dk",
                  payload=[])
            .reduce([agg_sum(col("v"), "s")]))
    engine = _engine(tables)
    result = engine.query(plan, ExecutionConfig.gpu_only([0, 1], block_tuples=2048))
    profile = result.profile
    assert profile.kernels_launched > 0
    assert profile.blocks_routed > 0
    assert profile.bytes_transferred > 0       # CPU-resident data to GPUs
    assert "gpu" in profile.device_stats
    assert profile.device_stats["gpu"].tuples_in >= N
    assert set(profile.phase_seconds) == {"build-ht0", "probe"}


def test_hybrid_uses_both_device_types(tables):
    plan = scan("fact", ["v"]).reduce([agg_sum(col("v"), "s")])
    engine = _engine(tables)
    result = engine.query(plan, ExecutionConfig.hybrid(8, [0, 1],
                                                       block_tuples=1024))
    stats = result.profile.device_stats
    assert stats["cpu"].tuples_in > 0
    assert stats["gpu"].tuples_in > 0
    assert stats["cpu"].tuples_in + stats["gpu"].tuples_in == N


def test_sequential_queries_on_one_engine(tables):
    engine = _engine(tables)
    config = ExecutionConfig.hybrid(4, [0], block_tuples=2048)
    plan = scan("fact", ["v"]).reduce([agg_sum(col("v"), "s")])
    first = engine.query(plan, config)
    second = engine.query(plan, config)
    assert first.value() == second.value()
    # times are per-query deltas, not cumulative clocks
    assert second.seconds == pytest.approx(first.seconds, rel=0.2)


def test_gpu_state_memory_exhaustion_raises(tables):
    """A hash table larger than device memory must fail loudly."""
    engine = _engine(tables)
    engine.catalog.set_logical_scale("dim", 2e6)  # dim HT -> far beyond 8 GB
    plan = (scan("fact", ["k", "v"])
            .join(scan("dim", ["dk", "g"]), probe_key="k", build_key="dk",
                  payload=["g"])
            .reduce([agg_sum(col("v"), "s")]))
    with pytest.raises(QueryError, match="does not fit"):
        engine.query(plan, ExecutionConfig.gpu_only([0], block_tuples=2048))


def test_empty_filter_result(tables):
    plan = (scan("fact", ["v", "w"])
            .filter(col("w") > 10_000)
            .reduce([agg_sum(col("v"), "s"), agg_count("n")]))
    result = _engine(tables).query(plan, ExecutionConfig.hybrid(2, [0],
                                                                block_tuples=2048))
    assert result.value("s") == 0.0
    assert result.value("n") == 0


def test_custom_server_spec(tables):
    spec = ServerSpec(num_sockets=2, cores_per_socket=4, num_gpus=4,
                      gpus_per_socket=(2, 2))
    engine = Proteus(spec=spec, segment_rows=4096)
    for table in tables.values():
        engine.register(table)
    plan = scan("fact", ["v"]).reduce([agg_sum(col("v"), "s")])
    result = engine.query(plan, ExecutionConfig.gpu_only([0, 1, 2, 3],
                                                         block_tuples=2048))
    assert result.value() == float(tables["fact"].column("v").values.sum())


def test_pipeline_sources_inspection(tables):
    engine = _engine(tables)
    plan = (scan("fact", ["k", "v"])
            .join(scan("dim", ["dk"]), probe_key="k", build_key="dk", payload=[])
            .reduce([agg_sum(col("v"), "s")]))
    sources = engine.pipeline_sources(plan, ExecutionConfig.hybrid(2, [0]))
    assert any("gpu" in name for name in sources)
    assert any("cpu" in name for name in sources)
    gpu_source = next(s for n, s in sources.items() if "probe-gpu" in n)
    assert "_atomic_add" in gpu_source or "_neighborhood_reduce" in gpu_source
