"""Executor tests over hand-built stage graphs.

The placer only emits source -> consumer shapes; these tests build richer
DAGs by hand to exercise the executor paths the paper describes but SSB
plans do not reach: GPU *mid*-stages whose packed outputs return to the
CPU through the gpu2cpu asynchronous queue, hash-pack producers feeding a
hash-routed consumer, and the locality invariant under transfers.
"""

import numpy as np
import pytest

from repro.algebra.expressions import col
from repro.algebra.logical import AggSpec
from repro.algebra.physical import (
    CollectSpec,
    ExchangeEdge,
    HetPlan,
    OpFilter,
    OpGroupAggSink,
    OpHashPackSink,
    OpPackSink,
    OpReduceSink,
    OpUnpack,
    Phase,
    RouterPolicy,
    SegmentSource,
    Stage,
    validate_stage_graph,
)
from repro.engine.config import ExecutionConfig
from repro.engine.executor import Executor
from repro.hardware.costmodel import CostModel
from repro.hardware.sim import Simulator
from repro.hardware.specs import PAPER_SERVER
from repro.hardware.topology import DeviceType, Server
from repro.memory.managers import BlockManagerSet
from repro.storage import Catalog, Column, DataType, Table

N = 20_000


@pytest.fixture
def env():
    sim = Simulator()
    server = Server.paper_machine(sim)
    catalog = Catalog(server, segment_rows=2048)
    rng = np.random.default_rng(3)
    catalog.register(Table("t", [
        Column.from_values("k", DataType.INT64, rng.integers(0, 64, N)),
        Column.from_values("v", DataType.INT64, rng.integers(0, 100, N)),
    ]))
    executor = Executor(sim, server, catalog, BlockManagerSet(server),
                        CostModel(PAPER_SERVER))
    return catalog, executor


def _source():
    return Stage("seg", DeviceType.CPU, ops=[OpPackSink(["k", "v"])],
                 source=SegmentSource("t", ["k", "v"]))


def test_gpu_midstage_returns_through_gpu2cpu(env):
    """GPU filter stage -> packed blocks -> gpu2cpu -> CPU reducer."""
    catalog, executor = env
    source = _source()
    gpu_filter = Stage("filter-gpu", DeviceType.GPU,
                       ops=[OpUnpack(["k", "v"]),
                            OpFilter(col("v") >= 50),
                            OpPackSink(["v"])],
                       dop=2, affinity=[0, 1])
    cpu_reduce = Stage("reduce-cpu", DeviceType.CPU,
                       ops=[OpUnpack(["v"]),
                            OpReduceSink([AggSpec("sum", col("v"), "s")])],
                       dop=4, affinity=[0, 12, 1, 13])
    phase = Phase("only", [source, gpu_filter, cpu_reduce], [
        ExchangeEdge(source, gpu_filter, policy=RouterPolicy.LOAD_BALANCE),
        ExchangeEdge(gpu_filter, cpu_reduce, policy=RouterPolicy.LOAD_BALANCE),
    ])
    plan = HetPlan([phase], CollectSpec([], [AggSpec("sum", col("v"), "s")],
                                        scalar=True))
    validate_stage_graph(plan)
    raw = executor.execute(plan, ExecutionConfig.hybrid(4, [0, 1],
                                                        block_tuples=1024))
    total = sum(p["s"] for p in raw.reduce_partials)
    values = catalog.table("t").column("v").values
    assert total == float(values[values >= 50].sum())
    # the mid-stage really ran on GPUs and kernels were launched
    assert raw.profile.kernels_launched > 0
    assert raw.profile.device_stats["gpu"].tuples_in == N


def test_hash_pack_producer_feeds_hash_router(env):
    """CPU hash-pack stage -> hash-routed group-agg consumers.

    Verifies the hash-pack invariant end to end: every consumer instance
    sees only its own partitions, and the union of all groups equals the
    ungrouped answer.
    """
    catalog, executor = env
    source = _source()
    packer = Stage("hashpack-cpu", DeviceType.CPU,
                   ops=[OpUnpack(["k", "v"]),
                        OpHashPackSink("k", 8, ["k", "v"])],
                   dop=2, affinity=[0, 12])
    grouper = Stage("group-cpu", DeviceType.CPU,
                    ops=[OpUnpack(["k", "v"]),
                         OpGroupAggSink(["k"], [AggSpec("sum", col("v"), "s")])],
                    dop=4, affinity=[1, 13, 2, 14])
    phase = Phase("only", [source, packer, grouper], [
        ExchangeEdge(source, packer, policy=RouterPolicy.LOAD_BALANCE),
        ExchangeEdge(packer, grouper, policy=RouterPolicy.HASH),
    ])
    plan = HetPlan([phase], CollectSpec(["k"],
                                        [AggSpec("sum", col("v"), "s")]))
    validate_stage_graph(plan)
    raw = executor.execute(plan, ExecutionConfig.cpu_only(6, block_tuples=512))
    # each key lands in exactly one partial (hash partitioning is disjoint)
    seen = {}
    for partial in raw.group_partials:
        for key, values in partial.items():
            assert key not in seen, f"key {key} split across consumers"
            seen[key] = values["s"]
    table = catalog.table("t")
    k, v = table.column("k").values, table.column("v").values
    for key in np.unique(k):
        assert seen[(int(key),)] == float(v[k == key].sum())


def test_locality_invariant_blocks_always_local_when_processed(env):
    """No pipeline ever reads a block that is not local to its device —
    the mem-move contract (paper Section 3.2)."""
    catalog, executor = env
    from repro.engine import executor as executor_module

    processed = []
    original = executor_module.Executor._charge

    def recording_charge(self, instance, handle, delta, cpu2gpu, uva):
        processed.append((handle.node_id, instance.node_id,
                          instance.device.value))
        return original(self, instance, handle, delta, cpu2gpu, uva)

    executor_module.Executor._charge = recording_charge
    try:
        source = _source()
        gpu_stage = Stage("sum-gpu", DeviceType.GPU,
                          ops=[OpUnpack(["v"]),
                               OpReduceSink([AggSpec("sum", col("v"), "s")])],
                          dop=2, affinity=[0, 1])
        phase = Phase("only", [source, gpu_stage], [
            ExchangeEdge(source, gpu_stage, policy=RouterPolicy.LOAD_BALANCE),
        ])
        plan = HetPlan([phase], CollectSpec([], [AggSpec("sum", col("v"), "s")],
                                            scalar=True))
        executor.execute(plan, ExecutionConfig.gpu_only([0, 1],
                                                        block_tuples=1024))
    finally:
        executor_module.Executor._charge = original
    assert processed
    for block_node, instance_node, device in processed:
        if device == "gpu":
            assert block_node == instance_node, (
                f"GPU pipeline read non-local block: {block_node} on "
                f"{instance_node}")


def test_waves_run_independent_builds_concurrently(env):
    """Two independent build phases share one wave; the consumer waits."""
    catalog, executor = env
    from repro.algebra.physical import OpBuildSink, OpProbe

    def build_phase(ht_id):
        source = _source()
        build = Stage(f"build-{ht_id}", DeviceType.CPU,
                      ops=[OpUnpack(["k", "v"]), OpBuildSink(ht_id, "k", [])],
                      dop=1, affinity=[0])
        return Phase(f"b-{ht_id}", [source, build],
                     [ExchangeEdge(source, build,
                                   policy=RouterPolicy.LOAD_BALANCE)],
                     produces_ht=ht_id)

    plan = HetPlan([build_phase("htA"), build_phase("htB")],
                   CollectSpec([], [], scalar=True))
    waves = Executor._waves(plan)
    assert len(waves) == 1 and len(waves[0]) == 2

    # probe phase must land in a later wave
    source = _source()
    probe = Stage("probe", DeviceType.CPU,
                  ops=[OpUnpack(["k", "v"]), OpProbe("htA", "k", []),
                       OpReduceSink([])], dop=1, affinity=[1])
    plan.phases.append(Phase("probe", [source, probe],
                             [ExchangeEdge(source, probe,
                                           policy=RouterPolicy.LOAD_BALANCE)],
                             consumes_ht=["htA"]))
    waves = Executor._waves(plan)
    assert len(waves) == 2
    assert [p.name for p in waves[1]] == ["probe"]
