"""Tests for the DBMS C and DBMS G baseline proxies."""


import pytest

from repro.baselines import DBMSC, DBMSG, GpuMemoryError, UnsupportedQueryError
from repro.baselines.common import decompose_star, plan_has_string_inequality
from repro.algebra.expressions import col
from repro.algebra.logical import agg_sum, scan
from repro.engine.reference import ReferenceExecutor
from repro.ssb import SSB_QUERY_IDS, generate_ssb, ssb_logical_scales, ssb_query


@pytest.fixture(scope="module")
def tables():
    return generate_ssb(scale_factor=0.005, seed=13)


def _normalise(rows):
    return sorted(
        tuple(round(v, 4) if isinstance(v, float) else v for v in row)
        for row in rows
    )


def _dbms_c(tables):
    engine = DBMSC(segment_rows=2048)
    for table in tables.values():
        engine.register(table)
    return engine


def _dbms_g(tables, logical_sf=None):
    engine = DBMSG(segment_rows=2048)
    for table in tables.values():
        engine.register(table)
    if logical_sf:
        for name, scale in ssb_logical_scales(tables, logical_sf).items():
            engine.catalog.set_logical_scale(name, scale)
    return engine


class TestStarDecomposition:
    def test_star_shape(self):
        plan = ssb_query("Q2.1")
        star = decompose_star(plan)
        assert star.fact.table == "lineorder"
        assert len(star.joins) == 3
        assert star.group_keys == ["d_year", "p_brand1"]
        assert not star.scalar

    def test_scalar_shape(self):
        star = decompose_star(ssb_query("Q1.1"))
        assert star.scalar and len(star.joins) == 1
        assert len(star.fact_ops) == 1  # the fact filter

    def test_string_inequality_detection(self, tables):
        engine = _dbms_g(tables)
        assert plan_has_string_inequality(ssb_query("Q2.2"),
                                          engine._is_string_column)
        for qid in ("Q1.1", "Q2.1", "Q2.3", "Q3.3", "Q4.3"):
            assert not plan_has_string_inequality(ssb_query(qid),
                                                  engine._is_string_column)


class TestDBMSC:
    @pytest.mark.parametrize("qid", SSB_QUERY_IDS)
    def test_all_queries_match_reference(self, tables, qid):
        engine = _dbms_c(tables)
        plan = ssb_query(qid)
        result = engine.query(plan, workers=8)
        expected = ReferenceExecutor(tables).execute(plan)
        assert _normalise(result.rows) == _normalise(expected), qid

    def test_more_workers_is_faster(self, tables):
        plan = ssb_query("Q2.1")
        slow = _dbms_c(tables).query(plan, workers=2).seconds
        fast = _dbms_c(tables).query(plan, workers=16).seconds
        assert fast < slow

    def test_worker_bounds_validated(self, tables):
        with pytest.raises(ValueError):
            _dbms_c(tables).query(ssb_query("Q1.1"), workers=0)
        with pytest.raises(ValueError):
            _dbms_c(tables).query(ssb_query("Q1.1"), workers=99)


class TestDBMSG:
    @pytest.mark.parametrize("qid", [q for q in SSB_QUERY_IDS if q != "Q2.2"])
    def test_all_queries_match_reference(self, tables, qid):
        engine = _dbms_g(tables)
        plan = ssb_query(qid)
        result = engine.query(plan, gpu_resident=True, vector_tuples=4096)
        expected = ReferenceExecutor(tables).execute(plan)
        assert _normalise(result.rows) == _normalise(expected), qid

    def test_q22_unsupported_when_gpu_resident(self, tables):
        with pytest.raises(UnsupportedQueryError, match="string inequality"):
            _dbms_g(tables).query(ssb_query("Q2.2"), gpu_resident=True)

    def test_q22_cpu_fallback_is_correct_and_glacial(self, tables):
        engine = _dbms_g(tables, logical_sf=1000.0)
        result = engine.query(ssb_query("Q2.2"), gpu_resident=False)
        expected = ReferenceExecutor(tables).execute(ssb_query("Q2.2"))
        assert _normalise(result.rows) == _normalise(expected)
        assert result.seconds > 3600, "paper: more than 1 hour at SF1000"

    def test_q43_fails_at_sf1000(self, tables):
        engine = _dbms_g(tables, logical_sf=1000.0)
        with pytest.raises(GpuMemoryError, match="cardinality"):
            engine.query(ssb_query("Q4.3"), gpu_resident=False,
                         vector_tuples=4096)

    def test_q43_succeeds_at_sf100(self, tables):
        engine = _dbms_g(tables, logical_sf=100.0)
        result = engine.query(ssb_query("Q4.3"), gpu_resident=True,
                              vector_tuples=4096)
        assert result.seconds > 0

    def test_out_of_core_slower_than_resident(self, tables):
        plan = ssb_query("Q1.1")
        resident = _dbms_g(tables, logical_sf=100.0).query(
            plan, gpu_resident=True, vector_tuples=4096).seconds
        streamed = _dbms_g(tables, logical_sf=100.0).query(
            plan, gpu_resident=False, vector_tuples=4096).seconds
        assert streamed > resident * 2

    def test_filters_after_join_selectivity_insensitive(self, tables):
        """DBMS G gathers from every dimension for every fact row, so a
        highly selective query costs about the same as an unselective one
        with the same join fan-out (the paper's Q3 observation)."""
        engine = _dbms_g(tables, logical_sf=100.0)
        broad = engine.query(ssb_query("Q3.1"), vector_tuples=4096).seconds
        narrow = engine.query(ssb_query("Q3.4"), vector_tuples=4096).seconds
        assert narrow >= broad * 0.6

    def test_non_star_plan_rejected(self, tables):
        # a projection inside a dimension is not supported by the dense
        # array layout
        inner = scan("date", ["d_datekey", "d_year"]).project(
            [("dy", col("d_year") + 0)])
        bad = scan("lineorder", ["lo_orderdate", "lo_revenue"]).join(
            inner, probe_key="lo_orderdate", build_key="d_datekey",
            payload=["dy"])
        # the computed dimension column defeats the dense-array layout
        with pytest.raises(UnsupportedQueryError):
            _dbms_g(tables).query(
                bad.reduce([agg_sum(col("lo_revenue"), "s")]),
                vector_tuples=4096)
