"""Differential + regression suite for transfer/compute overlap.

Covers the mem-move's double-buffered prefetch pipeline (credit-based
staging backpressure, ``prefetch_depth=1`` = overlap off), topology-routed
DMA path selection, the router's locality-first instance tie-breaking,
and the staging-slot accounting on failed/aborted queries:

* results are byte-identical across every prefetch depth x path policy
  combination (the overlap machinery is pure scheduling);
* simulated time never regresses when overlap is enabled;
* staging credits bound the in-flight staging slots per target node;
* a query that dies (or is torn down) with transfers in flight releases
  every staging slot and strands no credit waiter — the regression for
  slots acquired in ``schedule()`` whose consumer never runs its
  release epilogue;
* routing is deterministic and locality-stable under equal queue loads,
  including across repeated seeded concurrent batches.
"""

import numpy as np
import pytest

from repro.algebra.physical import (
    OpPackSink,
    OpReduceSink,
    OpUnpack,
    RouterPolicy,
    SegmentSource,
    Stage,
)
from repro.core.mem_move import MemMove
from repro.core.router import ConsumerGroup, Router
from repro.engine.config import ExecutionConfig
from repro.engine.reference import ReferenceExecutor
from repro.engine.scheduler import EngineServer
from repro.hardware.costmodel import CostModel
from repro.hardware.sim import Simulator, Store
from repro.hardware.specs import PAPER_SERVER
from repro.hardware.topology import DeviceType, Server
from repro.memory.block import Block, BlockHandle
from repro.memory.managers import BlockManagerSet
from repro.ssb import generate_ssb, load_ssb, ssb_query

DEPTHS = (1, 2, 4)
POLICIES = ("direct", "contention")

#: one join-free and one join-heavy SSB query exercise both the pure
#: streaming path and the broadcast-build + probe path
QUERIES = ("Q1.1", "Q3.1")


@pytest.fixture(scope="module")
def tables():
    return generate_ssb(scale_factor=0.01, seed=42)


@pytest.fixture(scope="module")
def reference(tables):
    return ReferenceExecutor(tables)


def _engine(tables, logical_sf=1.0):
    from repro.engine.proteus import Proteus

    engine = Proteus(segment_rows=2048)
    load_ssb(engine, tables=tables, logical_sf=logical_sf)
    return engine


class TestDifferential:
    """Byte-identical results across prefetch depths x path policies."""

    @pytest.mark.parametrize("depth", DEPTHS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_gpu_only_matches_reference(self, tables, reference, depth, policy):
        engine = _engine(tables)
        config = ExecutionConfig.gpu_only(
            [0, 1], block_tuples=512, prefetch_depth=depth,
            path_selection=policy,
        )
        for qid in QUERIES:
            result = engine.query(ssb_query(qid), config)
            assert sorted(result.rows) == sorted(
                reference.execute(ssb_query(qid))
            ), f"{qid} depth={depth} policy={policy}"

    @pytest.mark.parametrize("depth", DEPTHS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_hybrid_matches_reference(self, tables, reference, depth, policy):
        engine = _engine(tables)
        config = ExecutionConfig.hybrid(
            4, [0, 1], block_tuples=512, prefetch_depth=depth,
            path_selection=policy,
        )
        for qid in QUERIES:
            result = engine.query(ssb_query(qid), config)
            assert sorted(result.rows) == sorted(
                reference.execute(ssb_query(qid))
            ), f"{qid} depth={depth} policy={policy}"

    def test_overlap_never_slower_simulated(self, tables):
        """At a PCIe-bound logical scale, depth>=2 must not lose to the
        overlap-off baseline on any query (and must win on at least one)."""
        times = {}
        for depth in (1, 2):
            engine = _engine(tables, logical_sf=1000.0)
            config = ExecutionConfig.gpu_only(
                [0, 1], block_tuples=256, prefetch_depth=depth
            )
            times[depth] = {
                qid: engine.query(ssb_query(qid), config).seconds
                for qid in QUERIES
            }
        for qid in QUERIES:
            assert times[2][qid] <= times[1][qid] * (1 + 1e-9), qid
        assert any(
            times[2][qid] < times[1][qid] * 0.97 for qid in QUERIES
        ), f"overlap bought nothing: {times}"

    def test_staging_conserved_after_each_run(self, tables):
        engine = _engine(tables)
        config = ExecutionConfig.gpu_only(
            [0, 1], block_tuples=512, prefetch_depth=4
        )
        engine.query(ssb_query("Q3.1"), config)
        engine.blocks.release_all_caches()
        for node_id, manager in engine.blocks.managers.items():
            assert manager.free_blocks == manager.arena_blocks, node_id


def _mem_move_env(prefetch_depth=2, path_selection="contention"):
    sim = Simulator()
    server = Server.paper_machine(sim)
    blocks = BlockManagerSet(server)
    mem_move = MemMove(
        sim, server, blocks, CostModel(PAPER_SERVER),
        prefetch_depth=prefetch_depth, path_selection=path_selection,
    )
    return sim, server, blocks, mem_move


def _remote_handle(nbytes=8000, node="cpu:0", scale=1.0):
    values = np.zeros(nbytes // 8, dtype=np.int64)
    return BlockHandle(Block({"a": values}, node, scale))


class TestPrefetchCredits:
    def test_credits_bound_staged_slots(self):
        sim, _, _, mem_move = _mem_move_env(prefetch_depth=2)
        mem_move.schedule(_remote_handle(), "gpu:0")
        assert mem_move.has_credit("gpu:0")
        mem_move.schedule(_remote_handle(), "gpu:0")
        assert not mem_move.has_credit("gpu:0")
        assert mem_move.staged_outstanding("gpu:0") == 2
        mem_move.release_staged("gpu:0")
        assert mem_move.has_credit("gpu:0")

    def test_credits_are_per_target_node(self):
        _, _, _, mem_move = _mem_move_env(prefetch_depth=1)
        mem_move.schedule(_remote_handle(), "gpu:0")
        assert not mem_move.has_credit("gpu:0")
        assert mem_move.has_credit("gpu:1")

    def test_prefetch_proc_respects_depth(self):
        """The pipeline never holds more than prefetch_depth staging
        slots, even with a slow consumer and a deep input queue."""
        depth = 2
        sim, _, _, mem_move = _mem_move_env(prefetch_depth=depth)
        source = sim.store(name="source")
        fetched = sim.store(capacity=depth, name="fetched")
        peaks = []

        def consumer():
            while True:
                got = fetched.get()
                yield got
                handle = got.value
                if handle is Store.END:
                    return
                peaks.append(mem_move.staged_outstanding("gpu:0"))
                if handle.transfer_done is not None:
                    yield handle.transfer_done
                yield sim.timeout(1e-3)  # slow compute
                if handle.meta.get("staged"):
                    mem_move.release_staged("gpu:0")

        sim.process(
            mem_move.prefetch_proc(source, fetched, "gpu:0",
                                   lambda handle: True)
        )
        sim.process(consumer())
        for _ in range(8):
            source.put(_remote_handle())
        source.close()
        sim.run()
        assert mem_move.transfers == 8
        assert max(peaks) <= depth
        assert mem_move.staged_outstanding() == 0

    def test_depth_one_serialises_transfers(self):
        """With a single staging buffer the next DMA cannot launch until
        the consumer releases the previous block."""
        sim, server, _, mem_move = _mem_move_env(prefetch_depth=1)
        source = sim.store(name="source")
        fetched = sim.store(capacity=1, name="fetched")
        concurrency = []

        def consumer():
            while True:
                got = fetched.get()
                yield got
                handle = got.value
                if handle is Store.END:
                    return
                concurrency.append(
                    server.gpus[0].link.bandwidth.active_jobs
                )
                if handle.transfer_done is not None:
                    yield handle.transfer_done
                if handle.meta.get("staged"):
                    mem_move.release_staged("gpu:0")

        sim.process(
            mem_move.prefetch_proc(source, fetched, "gpu:0",
                                   lambda handle: True)
        )
        sim.process(consumer())
        for _ in range(5):
            source.put(_remote_handle(nbytes=80_000))
        source.close()
        sim.run()
        assert max(concurrency) <= 1


class TestStagingAbortAccounting:
    """Satellite regression: slots acquired in schedule() must be
    released when the consumer dies mid-wait, and parked prefetchers
    must not be stranded on credit waiters."""

    def test_abort_reclaims_unreleased_slots(self):
        sim, _, blocks, mem_move = _mem_move_env(prefetch_depth=2)
        mem_move.schedule(_remote_handle(), "gpu:0")
        mem_move.schedule(_remote_handle(), "gpu:0")
        mem_move.abort_outstanding()
        sim.run()
        blocks.release_all_caches()
        assert mem_move.staged_outstanding() == 0
        for node_id, manager in blocks.managers.items():
            assert manager.free_blocks == manager.arena_blocks, node_id

    def test_release_after_abort_is_noop(self):
        """The consumer's late epilogue after an abort reclaim must not
        over-release the shared arena."""
        sim, _, blocks, mem_move = _mem_move_env(prefetch_depth=2)
        mem_move.schedule(_remote_handle(), "gpu:0")
        free_before = blocks.managers["gpu:0"].free_blocks
        mem_move.abort_outstanding()
        free_after_abort = blocks.managers["gpu:0"].free_blocks
        assert free_after_abort == free_before + 1
        mem_move.release_staged("gpu:0")  # the race: consumer survived
        assert blocks.managers["gpu:0"].free_blocks == free_after_abort

    def test_abort_wakes_parked_credit_waiters(self):
        sim, _, _, mem_move = _mem_move_env(prefetch_depth=1)
        mem_move.schedule(_remote_handle(), "gpu:0")
        progressed = []

        def parked_prefetcher():
            while not mem_move.has_credit("gpu:0"):
                yield mem_move.await_credit("gpu:0")
            progressed.append(sim.now)

        proc = sim.process(parked_prefetcher())
        mem_move.abort_outstanding()
        sim.run()
        assert proc.triggered and proc.ok
        assert progressed, "prefetcher stranded on a credit waiter"

    def test_failed_query_releases_staged_slots_under_prefetch(self, tables):
        """End to end: a query that dies mid-probe with depth-4 prefetch
        in flight leaves the shared staging arenas whole, and a
        co-resident query is unaffected."""
        from repro.algebra.expressions import col
        from repro.algebra.logical import agg_sum, scan
        from repro.storage import Column, DataType, Table

        server = EngineServer(segment_rows=2048, max_concurrent=4)
        load_ssb(server.engine, tables=tables)
        server.register(Table("dup_dim", [
            Column.from_values("dk", DataType.INT64, np.array([1, 1, 2])),
            Column.from_values("dv", DataType.INT64, np.array([7, 8, 9])),
        ]))
        server.register(Table("dup_fact", [
            Column.from_values("fk", DataType.INT64, np.arange(1, 400) % 3),
            Column.from_values("fv", DataType.INT64, np.arange(399)),
        ]))
        bad_plan = (
            scan("dup_fact", ["fk", "fv"])
            .join(scan("dup_dim", ["dk", "dv"]), probe_key="fk",
                  build_key="dk", payload=["dv"])
            .reduce([agg_sum(col("fv"), "s")])
        )
        config = ExecutionConfig.hybrid(2, [0, 1], block_tuples=256,
                                        prefetch_depth=4)
        bad = server.submit(bad_plan, config, name="bad")
        good = server.submit(
            ssb_query("Q1.1"),
            ExecutionConfig.gpu_only([0, 1], block_tuples=512,
                                     prefetch_depth=4),
            name="good",
        )
        server.run()
        assert bad.status == "failed"
        assert good.status == "done"
        assert all(v == 0 for v in
                   server.engine.blocks.unaccounted_blocks().values())
        server.check_conservation()


class TestPausedShareAccounting:
    """The compute/memory split of a paused session must partition every
    demand dimension exactly once — the regression for the QPI window
    being double-counted (kept in the memory share AND released with the
    compute share), which made stall cleanup of a parked cross-socket
    session over-release the budget."""

    def test_shares_partition_every_dimension(self):
        from repro.engine.scheduler import _compute_share, _memory_share
        from repro.hardware.costmodel import QueryDemand

        demand = QueryDemand(dram_bytes=1e9, hbm_bytes=2e9, pcie_bytes=3e9,
                             qpi_bytes=4e9, cpu_cores=6, gpu_units=2)
        compute = _compute_share(demand).as_dict()
        memory = _memory_share(demand).as_dict()
        for dim, total in demand.as_dict().items():
            assert compute[dim] + memory[dim] == total, dim

    def test_stream_windows_travel_with_the_compute_share(self):
        from repro.engine.scheduler import _compute_share, _memory_share
        from repro.hardware.costmodel import QueryDemand

        demand = QueryDemand(pcie_bytes=3e9, qpi_bytes=4e9)
        assert _memory_share(demand).pcie_bytes == 0.0
        assert _memory_share(demand).qpi_bytes == 0.0
        assert _compute_share(demand).qpi_bytes == 4e9


def _gpu_stage(dop=2):
    return Stage("gpu-consumer", DeviceType.GPU,
                 ops=[OpUnpack(["a"]), OpReduceSink([])], dop=dop,
                 affinity=[0, 1][:dop])


def _producer():
    return Stage("producer", DeviceType.CPU, ops=[OpPackSink(["a"])],
                 source=SegmentSource("t", ["a"]))


class TestRouterLocalityTieBreak:
    """Satellite regression: deterministic, locality-stable instance
    selection under equal queue loads."""

    def _route(self, nodes):
        """Route one handle per node through a fresh router whose
        consumers complete instantly (queue loads stay equal)."""
        sim = Simulator()
        server = Server.paper_machine(sim)
        blocks = BlockManagerSet(server)
        mem_move = MemMove(sim, server, blocks, CostModel(PAPER_SERVER))
        group = ConsumerGroup(_gpu_stage(), ["gpu:0", "gpu:1"],
                              transfer_cost=mem_move.projected_cost)
        router = Router(sim, _producer(), [group], RouterPolicy.LOAD_BALANCE)
        landed = {0: [], 1: []}

        def consumer(index):
            queue = group.instance_queues[index]
            while True:
                got = queue.get()
                yield got
                if got.value is Store.END:
                    return
                landed[index].append(got.value.node_id)
                group.report_done(index)

        sim.process(router.run())
        sim.process(consumer(0))
        sim.process(consumer(1))
        for node in nodes:
            router.input.put(
                BlockHandle(Block({"a": np.zeros(4, dtype=np.int64)}, node))
            )
        router.input.close()
        sim.run()
        return landed

    def test_equal_load_ties_break_toward_local_socket(self):
        # all blocks live on socket 1: under equal loads every tie must
        # go to gpu:1 (same socket), never pile onto the lowest index
        landed = self._route(["cpu:1"] * 6)
        assert landed[0] == []
        assert len(landed[1]) == 6

    def test_interleaved_stream_routes_each_socket_locally(self):
        landed = self._route(["cpu:0", "cpu:1"] * 5)
        assert all(node == "cpu:0" for node in landed[0])
        assert all(node == "cpu:1" for node in landed[1])

    def test_routing_is_deterministic_across_runs(self):
        nodes = ["cpu:1", "cpu:1", "cpu:0", "cpu:1", "cpu:0", "cpu:0"]
        first = self._route(nodes)
        second = self._route(nodes)
        assert first == second

    def test_seeded_concurrent_batches_are_deterministic(self, tables):
        """Two identical seeded concurrent drives produce identical
        routing outcomes — same per-session latencies and results."""

        def drive():
            server = EngineServer(segment_rows=2048, max_concurrent=4)
            load_ssb(server.engine, tables=tables)
            config = ExecutionConfig.gpu_only([0, 1], block_tuples=512)
            for index, qid in enumerate(("Q1.1", "Q2.1", "Q3.1", "Q4.1")):
                server.submit(ssb_query(qid), config, name=f"{qid}#{index}")
            server.spawn_open_loop(
                [ssb_query("Q1.2")], config, rate_qps=200.0, arrivals=3,
                seed=7, name="open",
            )
            report = server.run()
            server.check_conservation()
            return report

        a, b = drive(), drive()
        assert a.makespan == b.makespan
        assert len(a.sessions) == len(b.sessions)
        for sa, sb in zip(a.sessions, b.sessions):
            assert sa.latency == sb.latency
            assert sa.result.rows == sb.result.rows


class TestPathPolicyDynamics:
    def test_contention_shifts_route_off_loaded_bounce_socket(self):
        """A contended bounce-socket DRAM flips the NUMA-hop choice to
        the direct peer-DMA route, deterministically."""
        sim, server, _, mem_move = _mem_move_env()
        handle = _remote_handle(nbytes=8_000_000, node="cpu:1")
        idle_path = mem_move.select_path("cpu:1", "gpu:0", 8_000_000)
        assert idle_path.key.startswith("numa-hop")
        # ~flood the bounce socket's DRAM with background jobs
        for _ in range(8):
            server.memory_nodes["cpu:0"].bandwidth.submit(
                1e9, rate_cap=5.6e9, label="background"
            )
        loaded_path = mem_move.select_path("cpu:1", "gpu:0", 8_000_000)
        assert loaded_path.key == "qpi-direct"
        # the projected-cost hook the router uses agrees with selection
        assert mem_move.projected_cost(handle, "gpu:0") > 0.0

    def test_direct_policy_ignores_contention(self):
        sim, server, _, mem_move = _mem_move_env(path_selection="direct")
        for _ in range(8):
            server.memory_nodes["cpu:1"].bandwidth.submit(
                1e9, rate_cap=5.6e9, label="background"
            )
        path = mem_move.select_path("cpu:1", "gpu:0", 8_000_000)
        assert path.key == "qpi-direct"  # first enumerated, always

    def test_path_counts_recorded_per_route(self):
        sim, _, _, mem_move = _mem_move_env()
        mem_move.schedule(_remote_handle(node="cpu:0"), "gpu:0")
        mem_move.schedule(_remote_handle(node="cpu:1"), "gpu:1")
        assert sum(mem_move.path_counts.values()) == 2
        assert "pcie" in mem_move.path_counts  # the same-socket route
        sim.run()


class TestAbortReentrancy:
    """Satellite regressions: ``abort_outstanding`` iterating over live
    dicts, and staged-slot accounting across queries sharing one arena."""

    def test_abort_survives_staged_map_growth_mid_iteration(self):
        """A release during the abort loop can wake a credit waiter whose
        prefetcher re-enters ``schedule()`` for a node the loop has not
        visited — the loop must iterate a snapshot, not the live dict."""
        sim, _, blocks, mem_move = _mem_move_env(prefetch_depth=2)
        mem_move.schedule(_remote_handle(), "gpu:0")
        mem_move.schedule(_remote_handle(), "gpu:0")
        real_release = blocks.release
        woken = []

        def release_and_reschedule(node_id, count=1):
            real_release(node_id, count)
            if not woken:
                # simulate the woken prefetcher: a brand-new target node
                # appears in _staged_outstanding mid-iteration
                woken.append(mem_move.schedule(_remote_handle(), "gpu:1"))

        blocks.release = release_and_reschedule
        mem_move.abort_outstanding()  # raises RuntimeError without snapshot
        blocks.release = real_release
        assert mem_move.staged_outstanding("gpu:0") == 0
        assert mem_move.staged_outstanding("gpu:1") == 1
        mem_move.release_staged("gpu:1")
        assert mem_move.staged_outstanding() == 0

    def test_abort_during_credit_wake_strands_no_waiter(self):
        """A prefetcher parked on ``await_credit`` when the owning query
        aborts must wake, re-check, and proceed — not hang forever."""
        sim, _, _, mem_move = _mem_move_env(prefetch_depth=1)
        mem_move.schedule(_remote_handle(), "gpu:0")  # credit exhausted
        progressed = []

        def parked_prefetcher():
            while not mem_move.has_credit("gpu:0"):
                yield mem_move.await_credit("gpu:0")
            progressed.append(mem_move.schedule(_remote_handle(), "gpu:0"))

        def aborter():
            yield sim.timeout(1e-6)
            mem_move.abort_outstanding()

        sim.process(parked_prefetcher())
        sim.process(aborter())
        sim.run()
        assert len(progressed) == 1
        assert mem_move.staged_outstanding("gpu:0") == 1
        mem_move.release_staged("gpu:0")

    def test_cross_query_abort_release_race_conserves_arena(self):
        """Query A's ``abort_outstanding`` racing query B's normal
        ``release_staged`` on the same shared arena: A's late consumer
        epilogue must be a no-op — it must not return B's slot (or any
        slot) a second time and over-free the arena."""
        sim = Simulator()
        server = Server.paper_machine(sim)
        blocks = BlockManagerSet(server)
        cost = CostModel(PAPER_SERVER)
        move_a = MemMove(sim, server, blocks, cost, prefetch_depth=4)
        move_b = MemMove(sim, server, blocks, cost, prefetch_depth=4)
        handle_a1 = move_a.schedule(_remote_handle(), "gpu:0")
        handle_a2 = move_a.schedule(_remote_handle(), "gpu:0")
        handle_b = move_b.schedule(_remote_handle(), "gpu:0")
        for handle in (handle_a1, handle_a2, handle_b):
            assert handle.transfer_done is not None  # all DMAs launched
        # A dies with both slots in flight; the abort reclaims them
        move_a.abort_outstanding()
        assert move_a.staged_outstanding() == 0
        # A's wedged consumer wakes late and runs its epilogue anyway:
        # must be a no-op, B's slot stays accounted to B
        move_a.release_staged("gpu:0")
        move_a.release_staged("gpu:0")
        assert move_b.staged_outstanding("gpu:0") == 1
        move_b.release_staged("gpu:0")
        assert move_b.staged_outstanding() == 0
        sim.run()
        blocks.release_all_caches()
        for node_id, manager in blocks.managers.items():
            assert manager.free_blocks == manager.arena_blocks, node_id
        assert all(v == 0 for v in blocks.unaccounted_blocks().values())

    def test_abort_is_idempotent_after_release_race(self):
        sim, _, blocks, mem_move = _mem_move_env(prefetch_depth=2)
        mem_move.schedule(_remote_handle(), "gpu:0")
        mem_move.abort_outstanding()
        mem_move.release_staged("gpu:0")  # late epilogue: no-op
        mem_move.abort_outstanding()  # second abort: nothing to reclaim
        assert mem_move.staged_outstanding() == 0
        sim.run()
        blocks.release_all_caches()
        for node_id, manager in blocks.managers.items():
            assert manager.free_blocks == manager.arena_blocks, node_id
