"""SLA-aware scheduling: priorities, deadlines, preemption, open-loop load.

Differential anchor: every query that completes — whether it queued,
backfilled past a blocked head, or was paused at a phase boundary and
resumed — must produce exactly the rows of the independent reference
executor.  The rest pins the scheduling semantics themselves: admission
order (priority, then earliest deadline, then submission), backfill
vs FIFO head-of-line blocking, phase-boundary preemption edge cases,
bounded-queue shedding under open-loop Poisson arrivals, and the
budget's over-release guard.
"""

import math

import pytest

from repro import EngineServer, ExecutionConfig, QoS, ResourceBudget
from repro.algebra.expressions import col
from repro.algebra.logical import agg_sum, scan
from repro.engine.reference import ReferenceExecutor
from repro.engine.scheduler import BatchReport, QuerySession, _percentile
from repro.hardware.costmodel import QueryDemand
from repro.ssb import generate_ssb, load_ssb, ssb_query


@pytest.fixture(scope="module")
def tables():
    return generate_ssb(scale_factor=0.005, seed=13)


@pytest.fixture(scope="module")
def reference(tables):
    return ReferenceExecutor(tables)


def _server(tables, **kwargs):
    kwargs.setdefault("compile_seconds", 0.0)
    server = EngineServer(segment_rows=2048, **kwargs)
    load_ssb(server.engine, tables=tables)
    return server


def _config(workers=4):
    return ExecutionConfig.cpu_only(workers, block_tuples=4096)


def _submit_later(server, delay, plan, config, **kwargs):
    """Submit from inside the simulation, ``delay`` seconds in."""
    holder = {}

    def arrival():
        yield server.sim.timeout(delay)
        holder["session"] = server.submit(plan, config, **kwargs)

    server.sim.process(arrival(), name=f"arrival+{delay:g}")
    return holder


#: a plan with no joins places as a single phase: its only wave is also
#: its last, so it exposes the preempt-during-last-phase no-op
SINGLE_PHASE_PLAN = scan("lineorder", ["lo_revenue"]).reduce(
    [agg_sum(col("lo_revenue"), "rev")]
)

#: same shape but streaming four columns — slow enough to still be
#: running when a join query reaches its first phase boundary
WIDE_SINGLE_PHASE_PLAN = scan(
    "lineorder",
    ["lo_revenue", "lo_extendedprice", "lo_ordtotalprice", "lo_quantity"],
).reduce([agg_sum(col("lo_revenue"), "rev")])


class TestAdmissionOrdering:
    def test_priority_beats_submission_order(self, tables, reference):
        server = _server(tables, max_concurrent=1)
        low = server.submit(
            ssb_query("Q1.1"), _config(), name="low", qos=QoS.background()
        )
        high = server.submit(
            ssb_query("Q1.2"), _config(), name="high", qos=QoS.interactive()
        )
        server.run()
        assert high.admit_time < low.admit_time
        assert high.finish_time < low.finish_time
        for session, qid in ((low, "Q1.1"), (high, "Q1.2")):
            expected = reference.execute(ssb_query(qid))
            assert sorted(session.result.rows) == sorted(expected)

    def test_earliest_deadline_first_within_class(self, tables):
        server = _server(tables, max_concurrent=1)
        relaxed = server.submit(
            ssb_query("Q1.1"),
            _config(),
            name="relaxed",
            qos=QoS(priority=5, deadline_seconds=10.0),
        )
        urgent = server.submit(
            ssb_query("Q1.2"),
            _config(),
            name="urgent",
            qos=QoS(priority=5, deadline_seconds=0.5),
        )
        server.run()
        assert urgent.admit_time < relaxed.admit_time

    def test_backfill_lets_small_query_pass_blocked_head(self, tables):
        budget = ResourceBudget(cpu_cores=6)
        server = _server(tables, max_concurrent=8, budget=budget)
        first = server.submit(ssb_query("Q1.1"), _config(4), name="first")
        blocked_head = server.submit(ssb_query("Q2.1"), _config(4), name="head")
        small = server.submit(ssb_query("Q1.2"), _config(2), name="small")
        server.run()
        # the 2-core query slipped past the blocked 4-core head and ran
        # alongside the first query; the head waited for cores
        assert small.admit_time == first.admit_time
        assert blocked_head.admit_time > small.admit_time
        server.check_conservation()

    def test_backfill_limit_bounds_starvation_of_blocked_head(self, tables):
        """A large equal-priority query must not be starved forever by a
        staggered stream of small backfilling queries (something is
        always running, so the 8-core head never fits): after
        ``backfill_limit`` bypasses the barrier closes, the budget
        drains, and the head is admitted before the remaining smalls."""
        budget = ResourceBudget(cpu_cores=8)
        server = _server(tables, max_concurrent=8, budget=budget, backfill_limit=2)
        server.submit(ssb_query("Q1.1"), _config(4), name="s0")
        big = server.submit(ssb_query("Q2.1"), _config(8), name="big")
        holders = [
            _submit_later(
                server,
                0.004 * (1 + index),
                ssb_query("Q1.2"),
                _config(4),
                name=f"s{1 + index}",
            )
            for index in range(4)
        ]
        server.run()
        assert big.status == "done"
        # exactly two bypasses were tolerated, then the barrier held
        assert big.bypassed == 2
        later = [holders[2]["session"], holders[3]["session"]]
        assert all(big.admit_time < s.admit_time for s in later)
        server.check_conservation()

    def test_fifo_mode_preserves_head_of_line_blocking(self, tables):
        budget = ResourceBudget(cpu_cores=6)
        server = _server(tables, max_concurrent=8, budget=budget, admission="fifo")
        server.submit(ssb_query("Q1.1"), _config(4), name="first")
        blocked_head = server.submit(ssb_query("Q2.1"), _config(4), name="head")
        small = server.submit(ssb_query("Q1.2"), _config(2), name="small")
        server.run()
        # FIFO: nothing passes the blocked head, priorities are ignored
        assert small.admit_time >= blocked_head.admit_time
        server.check_conservation()

    def test_fifo_mode_ignores_priorities(self, tables):
        server = _server(tables, max_concurrent=1, admission="fifo")
        low = server.submit(
            ssb_query("Q1.1"), _config(), name="low", qos=QoS.background()
        )
        high = server.submit(
            ssb_query("Q1.2"), _config(), name="high", qos=QoS.interactive()
        )
        server.run()
        assert low.admit_time < high.admit_time

    def test_qos_and_shorthand_are_mutually_exclusive(self, tables):
        server = _server(tables)
        with pytest.raises(ValueError, match="not both"):
            server.submit(
                ssb_query("Q1.1"),
                _config(),
                qos=QoS.interactive(),
                priority=3,
            )

    def test_qos_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError, match="deadline_seconds"):
            QoS(priority=1, deadline_seconds=0.0)

    def test_priority_shorthand_reports_under_own_class(self, tables):
        """submit(priority=7) must not pool its latencies into the
        priority-0 'batch' class in per-class reporting."""
        server = _server(tables, max_concurrent=1)
        server.submit(ssb_query("Q1.1"), _config(), name="plain")
        hot = server.submit(ssb_query("Q1.2"), _config(), name="hot", priority=7)
        report = server.run()
        assert hot.label == "priority+7"
        # the demand is the scheduling source of truth the queue ranks by
        assert hot.demand.priority == 7
        assert hot.priority == hot.demand.priority
        tails = report.latency_percentiles()
        assert set(tails) == {"priority+7", "batch"}
        assert tails["priority+7"]["p99"] == hot.latency


class TestPhaseBoundaryPreemption:
    def test_preempted_query_resumes_byte_identical(self, tables, reference):
        """A mid-run interactive arrival pauses the running background
        query at its build->probe boundary; the resumed query's rows are
        byte-identical to the reference and to an unpreempted run."""
        solo_server = _server(tables, max_concurrent=1)
        solo = solo_server.submit(ssb_query("Q2.1"), _config(4), name="solo")
        solo_server.run()

        budget = ResourceBudget(cpu_cores=4)
        server = _server(tables, max_concurrent=4, budget=budget)
        victim = server.submit(
            ssb_query("Q2.1"), _config(4), name="victim", qos=QoS.background()
        )
        holder = _submit_later(
            server,
            0.002,
            ssb_query("Q1.1"),
            _config(4),
            name="hi",
            qos=QoS.interactive(deadline_seconds=1.0),
        )
        report = server.run()
        hi = holder["session"]
        assert victim.status == "done" and hi.status == "done"
        assert victim.preemptions == 1
        assert report.preemptions == 1
        assert hi.finish_time < victim.finish_time
        assert hi.deadline_met is True
        # the pause is visible in the victim's profile, not the high-
        # priority query's latency
        assert victim.result.profile.suspended_seconds > 0.0
        assert hi.result.profile.suspended_seconds == 0.0
        # session-level accounting agrees with the executor's, and
        # service time excludes the suspended span
        assert victim.suspended_seconds == pytest.approx(
            victim.result.profile.suspended_seconds
        )
        assert victim.service_seconds == pytest.approx(
            victim.finish_time - victim.admit_time - victim.suspended_seconds
        )
        expected = reference.execute(ssb_query("Q2.1"))
        assert sorted(victim.result.rows) == sorted(expected)
        assert victim.result.rows == solo.result.rows
        server.check_conservation()

    def test_preempt_during_last_phase_is_noop(self, tables, reference):
        """A single-phase query is always in its final phase: requesting
        preemption finds no remaining checkpoint and must change
        nothing."""
        budget = ResourceBudget(cpu_cores=4)
        server = _server(tables, max_concurrent=4, budget=budget)
        victim = server.submit(
            SINGLE_PHASE_PLAN, _config(4), name="victim", qos=QoS.background()
        )
        holder = _submit_later(
            server,
            0.001,
            ssb_query("Q1.1"),
            _config(4),
            name="hi",
            qos=QoS.interactive(),
        )
        server.run()
        hi = holder["session"]
        assert victim.status == "done" and hi.status == "done"
        assert victim.preemptions == 0
        assert victim.result.profile.suspended_seconds == 0.0
        # no checkpoint ever fired: the victim ran to completion first
        assert hi.admit_time >= victim.finish_time
        expected = reference.execute(SINGLE_PHASE_PLAN)
        assert sorted(victim.result.rows) == sorted(expected)
        server.check_conservation()

    def test_preemption_disabled_keeps_victim_running(self, tables):
        budget = ResourceBudget(cpu_cores=4)
        server = _server(tables, max_concurrent=4, budget=budget, preemption=False)
        victim = server.submit(
            ssb_query("Q2.1"), _config(4), name="victim", qos=QoS.background()
        )
        holder = _submit_later(
            server,
            0.002,
            ssb_query("Q1.1"),
            _config(4),
            name="hi",
            qos=QoS.interactive(),
        )
        server.run()
        hi = holder["session"]
        assert victim.preemptions == 0
        assert hi.admit_time >= victim.finish_time
        server.check_conservation()

    def test_equal_priority_never_preempts(self, tables):
        budget = ResourceBudget(cpu_cores=4)
        server = _server(tables, max_concurrent=4, budget=budget)
        victim = server.submit(ssb_query("Q2.1"), _config(4), name="victim")
        _submit_later(server, 0.002, ssb_query("Q1.1"), _config(4), name="peer")
        server.run()
        assert victim.preemptions == 0
        server.check_conservation()

    def test_final_phase_victim_is_skipped_for_preemptable_one(self, tables):
        """A victim that can never yield (single phase, no checkpoint
        ahead) must not absorb the preemption request: the planner skips
        it and asks the join query that still has a boundary to cross."""
        budget = ResourceBudget(cpu_cores=6)
        server = _server(tables, max_concurrent=8, budget=budget)
        join_victim = server.submit(
            ssb_query("Q2.1"), _config(4), name="join", qos=QoS.background()
        )
        last_phase = server.submit(
            WIDE_SINGLE_PHASE_PLAN,
            _config(2),
            name="last-phase",
            qos=QoS.background(),
        )
        holder = _submit_later(
            server,
            0.002,
            ssb_query("Q1.1"),
            _config(4),
            name="hi",
            qos=QoS.interactive(),
        )
        server.run()
        hi = holder["session"]
        assert last_phase.preemptions == 0
        assert join_victim.preemptions == 1
        assert hi.finish_time < join_victim.finish_time
        server.check_conservation()

    def test_paused_query_keeps_memory_charged(self, tables):
        """Pausing frees compute dimensions only: the victim's DRAM stays
        charged (its hash tables remain resident), and is re-charged for
        nothing on resume — visible in the budget's conservation totals."""
        budget = ResourceBudget(cpu_cores=4)
        server = _server(tables, max_concurrent=4, budget=budget)
        victim = server.submit(
            ssb_query("Q2.1"), _config(4), name="victim", qos=QoS.background()
        )
        holder = _submit_later(
            server,
            0.002,
            ssb_query("Q1.1"),
            _config(4),
            name="hi",
            qos=QoS.interactive(),
        )
        server.run()
        hi = holder["session"]
        assert victim.preemptions == 1
        # cpu cores: victim admitted + resumed (twice) plus hi once
        expected_cores = victim.demand.cpu_cores * 2 + hi.demand.cpu_cores
        assert budget.total_allocated["cpu_cores"] == expected_cores
        # dram: charged exactly once per query — never released at the
        # pause, never double-charged at the resume
        expected_dram = victim.demand.dram_bytes + hi.demand.dram_bytes
        assert budget.total_allocated["dram_bytes"] == pytest.approx(expected_dram)
        server.check_conservation()

    def test_multi_victim_preemption_accumulates_headroom(self, tables):
        """A waiter too big for any single victim's release: backfill
        must not resume the first paused victim while the second's
        preempt request is still in flight, or the campaign can never
        accumulate enough free compute."""
        budget = ResourceBudget(cpu_cores=12)
        server = _server(tables, max_concurrent=8, budget=budget)
        first = server.submit(
            ssb_query("Q4.1"), _config(6), name="v1", qos=QoS.background()
        )
        second = server.submit(
            ssb_query("Q3.1"), _config(6), name="v2", qos=QoS.background()
        )
        holder = _submit_later(
            server,
            0.002,
            ssb_query("Q1.1"),
            _config(12),
            name="hi",
            qos=QoS.interactive(),
        )
        server.run()
        hi = holder["session"]
        assert first.preemptions == 1 and second.preemptions == 1
        # both pauses were real (no same-instant backfill resume)...
        assert first.suspended_seconds > 0.0
        assert second.suspended_seconds > 0.0
        # ...and they actually served the waiter: it was admitted on the
        # accumulated headroom, not after a victim's natural completion
        assert hi.admit_time < min(first.finish_time, second.finish_time)
        assert all(s.status == "done" for s in (first, second, hi))
        server.check_conservation()

    def test_preemption_survives_multiple_rounds(self, tables, reference):
        """Two successive interactive arrivals pause the same background
        query at two different phase boundaries; it still finishes with
        exact results."""
        budget = ResourceBudget(cpu_cores=4)
        server = _server(tables, max_concurrent=4, budget=budget)
        victim = server.submit(
            ssb_query("Q4.1"), _config(4), name="victim", qos=QoS.background()
        )
        _submit_later(
            server,
            0.002,
            ssb_query("Q1.1"),
            _config(4),
            name="hi-0",
            qos=QoS.interactive(),
        )
        _submit_later(
            server,
            0.030,
            ssb_query("Q1.2"),
            _config(4),
            name="hi-1",
            qos=QoS.interactive(),
        )
        server.run()
        assert victim.status == "done"
        assert victim.preemptions >= 1
        expected = reference.execute(ssb_query("Q4.1"))
        assert sorted(victim.result.rows) == sorted(expected)
        server.check_conservation()


class TestOpenLoopArrivals:
    def test_bounded_queue_sheds_under_overload(self, tables):
        server = _server(
            tables,
            max_concurrent=2,
            max_queue_depth=3,
            budget=ResourceBudget(cpu_cores=8),
        )
        plans = [ssb_query(q) for q in ("Q1.1", "Q2.1", "Q3.1")]
        server.spawn_open_loop(plans, _config(4), rate_qps=400.0, arrivals=30, seed=7)
        report = server.run()
        assert len(report.shed) > 0
        assert len(report.completed) + len(report.shed) == 30
        assert not report.failed
        # shed sessions hold nothing: budget drained, no staging slots
        # or state handles leaked anywhere
        server.check_conservation()
        leaked = server.engine.blocks.unaccounted_blocks()
        assert all(count == 0 for count in leaked.values())
        for session in report.shed:
            assert session.done.triggered
            assert session.queue_seconds is None

    def test_open_loop_is_deterministic_per_seed(self, tables):
        def drive(seed):
            server = _server(
                tables,
                max_concurrent=2,
                max_queue_depth=3,
                budget=ResourceBudget(cpu_cores=8),
            )
            plans = [ssb_query(q) for q in ("Q1.1", "Q2.1", "Q3.1")]
            server.spawn_open_loop(
                plans, _config(4), rate_qps=400.0, arrivals=20, seed=seed
            )
            report = server.run()
            return report.makespan, [s.status for s in report.sessions]

        makespan_a, statuses_a = drive(seed=11)
        makespan_b, statuses_b = drive(seed=11)
        makespan_c, statuses_c = drive(seed=12)
        assert makespan_a == makespan_b
        assert statuses_a == statuses_b
        # a different seed produces a different arrival pattern
        assert (makespan_a, statuses_a) != (makespan_c, statuses_c)

    def test_unbounded_queue_never_sheds(self, tables):
        server = _server(tables, max_concurrent=2, budget=ResourceBudget(cpu_cores=8))
        plans = [ssb_query(q) for q in ("Q1.1", "Q1.2")]
        server.spawn_open_loop(plans, _config(4), rate_qps=400.0, arrivals=12, seed=3)
        report = server.run()
        assert not report.shed
        assert len(report.completed) == 12
        server.check_conservation()

    def test_open_loop_validates_arguments(self, tables):
        server = _server(tables)
        with pytest.raises(ValueError, match="rate_qps"):
            server.spawn_open_loop(
                [ssb_query("Q1.1")], _config(), rate_qps=0.0, arrivals=1
            )
        with pytest.raises(ValueError, match="arrivals"):
            server.spawn_open_loop(
                [ssb_query("Q1.1")], _config(), rate_qps=1.0, arrivals=0
            )
        with pytest.raises(ValueError, match="plans"):
            server.spawn_open_loop([], _config(), rate_qps=1.0, arrivals=1)


class TestBudgetOverRelease:
    def test_release_of_never_allocated_demand_raises(self):
        budget = ResourceBudget(cpu_cores=8, dram_bytes=1e9)
        with pytest.raises(ValueError, match="over-release"):
            budget.release(QueryDemand(cpu_cores=4))

    def test_double_release_raises_and_leaves_budget_intact(self):
        budget = ResourceBudget(cpu_cores=8)
        demand = QueryDemand(cpu_cores=4, dram_bytes=1e6)
        budget.allocate(demand)
        budget.release(demand)
        with pytest.raises(ValueError, match="over-release"):
            budget.release(demand)
        # the failed release mutated nothing: conservation still holds
        budget.assert_conserved()

    def test_partial_over_release_mutates_nothing(self):
        budget = ResourceBudget(cpu_cores=8, dram_bytes=1e9)
        budget.allocate(QueryDemand(cpu_cores=4))
        # dram fits (0 <= 0) but cpu over-releases: nothing is applied
        with pytest.raises(ValueError, match="over-release"):
            budget.release(QueryDemand(cpu_cores=6))
        assert budget.in_use["cpu_cores"] == 4.0
        assert budget.total_released["cpu_cores"] == 0.0
        budget.release(QueryDemand(cpu_cores=4))
        budget.assert_conserved()


class TestReporting:
    @staticmethod
    def _session(query_id, status, latency, qos, deadline=None):
        session = QuerySession(
            query_id=query_id,
            name=f"s{query_id}",
            plan=None,
            config=None,
            het=None,
            demand=QueryDemand(),
            qos=qos,
            submit_time=0.0,
            deadline=deadline,
        )
        session.status = status
        if status in ("done", "failed", "shed"):
            session.finish_time = latency
        return session

    def test_percentiles_are_nearest_rank(self):
        values = [float(n) for n in range(1, 101)]
        assert _percentile(values, 50) == 50.0
        assert _percentile(values, 95) == 95.0
        assert _percentile(values, 99) == 99.0
        assert _percentile([7.0], 99) == 7.0
        assert math.isnan(_percentile([], 50))

    def test_per_class_percentiles_and_preemptions(self):
        fast = QoS.interactive()
        slow = QoS.background()
        sessions = [self._session(i, "done", 0.01 * (i + 1), fast) for i in range(4)]
        sessions += [self._session(10 + i, "done", 1.0 + i, slow) for i in range(2)]
        sessions[0].preemptions = 2
        report = BatchReport(sessions=sessions, makespan=3.0, throughput_qps=2.0)
        tails = report.latency_percentiles()
        assert tails["interactive"]["p50"] == pytest.approx(0.02)
        assert tails["interactive"]["p99"] == pytest.approx(0.04)
        assert tails["background"]["p99"] == pytest.approx(2.0)
        assert report.preemptions == 2
        assert "interactive" in report.summary()

    def test_summary_renders_dash_for_class_with_no_completions(self):
        """A class whose sessions were ALL shed (or failed) has no
        latency sample: the summary renders a dash for it and
        ``latency_percentiles`` excludes it — never a NaN in the
        benchmark-smoke artifact."""
        qos = QoS.interactive(deadline_seconds=0.1)
        sessions = []
        for i in range(3):
            sessions.append(self._session(i, "shed", 0.0, qos, deadline=0.1))
        sessions.append(self._session(9, "done", 0.5, QoS.batch()))
        report = BatchReport(sessions=sessions, makespan=1.0, throughput_qps=1.0)
        assert "interactive" not in report.latency_percentiles()
        assert "batch" in report.latency_percentiles()
        text = report.summary()
        assert "nan" not in text.lower()
        # the class still appears, with a dash instead of percentiles
        assert "interactive" in text
        assert "p50/p95/p99=-" in text
        # shed sessions render a dash, not their zero "latency"
        shed_lines = []
        for line in text.splitlines():
            if "shed" in line and "latency" in line:
                shed_lines.append(line)
        assert shed_lines and all("latency=-" in line for line in shed_lines)

    def test_summary_handles_all_failed_class(self):
        qos = QoS(priority=3, label="doomed")
        sessions = [self._session(i, "failed", 0.2, qos) for i in range(2)]
        report = BatchReport(sessions=sessions, makespan=1.0, throughput_qps=0.0)
        assert report.latency_percentiles() == {}
        text = report.summary()
        assert "nan" not in text.lower()
        assert "doomed" in text

    def test_deadline_hit_rate_counts_shed_and_failed_as_misses(self):
        qos = QoS(priority=5, deadline_seconds=1.0, label="slo")
        sessions = [
            self._session(0, "done", 0.5, qos, deadline=1.0),
            self._session(1, "done", 2.0, qos, deadline=1.0),
            self._session(2, "shed", 0.0, qos, deadline=1.0),
            self._session(3, "failed", 0.4, qos, deadline=1.0),
        ]
        report = BatchReport(sessions=sessions, makespan=2.0, throughput_qps=1.0)
        # 1 hit out of 4 judged: late, shed and failed all count as misses
        assert report.deadline_hit_rates() == {"slo": pytest.approx(1 / 4)}
        # shed sessions are refusals, not latency samples
        assert len(report.latencies) == 3
