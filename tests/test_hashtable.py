"""Unit and property tests for the open-addressing hash table."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.jit.hashtable import DuplicateKeyError, HashTable, hash_int64


class TestBuildProbe:
    def test_basic_roundtrip(self):
        ht = HashTable(4, ["v"])
        keys = np.array([10, 20, 30], dtype=np.int64)
        ht.insert(keys, {"v": np.array([1, 2, 3])})
        idx = ht.probe(np.array([20, 99, 10], dtype=np.int64))
        assert list(idx >= 0) == [True, False, True]
        assert list(ht.payload["v"][idx[idx >= 0]]) == [2, 1]

    def test_probe_empty_table(self):
        ht = HashTable(16)
        assert list(ht.probe(np.array([1, 2], dtype=np.int64))) == [-1, -1]

    def test_probe_empty_keys(self):
        ht = HashTable(16)
        ht.insert(np.array([1], dtype=np.int64))
        assert ht.probe(np.array([], dtype=np.int64)).size == 0

    def test_incremental_inserts_grow(self):
        ht = HashTable(4, ["v"])
        for start in range(0, 1000, 100):
            keys = np.arange(start, start + 100, dtype=np.int64)
            ht.insert(keys, {"v": keys * 3})
        assert len(ht) == 1000
        idx = ht.probe(np.arange(1000, dtype=np.int64))
        assert np.all(idx >= 0)
        assert np.array_equal(ht.payload["v"][idx], np.arange(1000) * 3)

    def test_duplicate_across_batches_raises(self):
        ht = HashTable(16)
        ht.insert(np.array([5], dtype=np.int64))
        with pytest.raises(DuplicateKeyError):
            ht.insert(np.array([5], dtype=np.int64))

    def test_duplicate_within_batch_raises(self):
        ht = HashTable(16)
        with pytest.raises(DuplicateKeyError):
            ht.insert(np.array([7, 7], dtype=np.int64))

    def test_missing_payload_column_raises(self):
        ht = HashTable(16, ["v"])
        with pytest.raises(KeyError, match="missing payload"):
            ht.insert(np.array([1], dtype=np.int64), {})

    def test_negative_keys_supported(self):
        ht = HashTable(8)
        keys = np.array([-5, -1, 0, 3], dtype=np.int64)
        ht.insert(keys)
        assert np.all(ht.probe(keys) >= 0)
        assert list(ht.probe(np.array([-2], dtype=np.int64))) == [-1]

    def test_footprints(self):
        ht = HashTable(100, ["v"])
        keys = np.arange(50, dtype=np.int64)
        ht.insert(keys, {"v": keys})
        assert ht.nbytes >= ht.content_nbytes
        assert ht.content_nbytes == 50 * 2 * 16 + 50 * 8


def test_hash_mixes_sequential_keys():
    hashes = hash_int64(np.arange(1024, dtype=np.int64))
    low_bits = hashes & np.uint64(255)
    # sequential keys must spread over the low bits (multiplicative mix)
    assert len(np.unique(low_bits)) > 128


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=-(2**40), max_value=2**40),
                  min_size=1, max_size=300, unique=True),
    probes=st.lists(st.integers(min_value=-(2**40), max_value=2**40),
                    min_size=0, max_size=300),
)
def test_probe_matches_dict_oracle(keys, probes):
    ht = HashTable(8, ["v"])
    key_array = np.array(keys, dtype=np.int64)
    ht.insert(key_array, {"v": key_array * 7})
    oracle = {k: k * 7 for k in keys}
    idx = ht.probe(np.array(probes, dtype=np.int64))
    for probe, index in zip(probes, idx):
        if probe in oracle:
            assert index >= 0
            assert ht.payload["v"][index] == oracle[probe]
        else:
            assert index == -1


@settings(max_examples=20, deadline=None)
@given(chunks=st.lists(
    st.lists(st.integers(min_value=0, max_value=10**6), min_size=1,
             max_size=50, unique=True),
    min_size=1, max_size=6,
))
def test_incremental_batches_equal_single_batch(chunks):
    """Inserting in chunks is equivalent to one bulk insert (after
    de-duplicating across chunks)."""
    seen: set[int] = set()
    deduped = []
    for chunk in chunks:
        fresh = [k for k in chunk if k not in seen]
        seen.update(fresh)
        deduped.append(fresh)
    incremental = HashTable(4)
    for chunk in deduped:
        if chunk:
            incremental.insert(np.array(chunk, dtype=np.int64))
    bulk = HashTable(4)
    flat = [k for chunk in deduped for k in chunk]
    if flat:
        bulk.insert(np.array(flat, dtype=np.int64))
    probes = np.array(sorted(seen) + [10**7], dtype=np.int64)
    hits_a = incremental.probe(probes) >= 0
    hits_b = bulk.probe(probes) >= 0
    assert np.array_equal(hits_a, hits_b)
