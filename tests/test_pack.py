"""Unit and property tests for the pack / hash-pack operators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pack import HashPacker, Packer


class TestPacker:
    def test_accumulates_until_full(self):
        packer = Packer(block_tuples=5)
        assert packer.push({"a": np.arange(3)}) == []
        out = packer.push({"a": np.arange(3)})
        assert len(out) == 1
        assert list(out[0]["a"]) == [0, 1, 2, 0, 1]
        assert packer.buffered == 1

    def test_large_push_emits_multiple_blocks(self):
        packer = Packer(block_tuples=4)
        out = packer.push({"a": np.arange(10)})
        assert [len(b["a"]) for b in out] == [4, 4]
        assert packer.buffered == 2

    def test_flush_emits_remainder(self):
        packer = Packer(block_tuples=4)
        packer.push({"a": np.arange(3)})
        out = packer.flush()
        assert len(out) == 1 and list(out[0]["a"]) == [0, 1, 2]
        assert packer.flush() == []

    def test_empty_push_ignored(self):
        packer = Packer(block_tuples=4)
        assert packer.push({}) == []
        assert packer.push({"a": np.array([])}) == []

    def test_ragged_batch_rejected(self):
        packer = Packer(block_tuples=4)
        with pytest.raises(ValueError, match="ragged"):
            packer.push({"a": np.arange(2), "b": np.arange(3)})

    def test_schema_change_rejected(self):
        packer = Packer(block_tuples=10)
        packer.push({"a": np.arange(2)})
        with pytest.raises(ValueError, match="schema"):
            packer.push({"b": np.arange(2)})

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            Packer(block_tuples=0)


class TestHashPacker:
    def test_one_block_per_hash_value(self):
        packer = HashPacker(partitions=4, block_tuples=3)
        out = []
        out += packer.push(1, {"a": np.arange(2)})
        out += packer.push(2, {"a": np.arange(2)})
        out += packer.push(1, {"a": np.arange(2)})  # partition 1 fills (4>3)
        assert len(out) == 1
        partition, block = out[0]
        assert partition == 1 and len(block["a"]) == 3

    def test_flush_returns_all_partitions(self):
        packer = HashPacker(partitions=3, block_tuples=10)
        packer.push(0, {"a": np.arange(1)})
        packer.push(2, {"a": np.arange(2)})
        flushed = packer.flush()
        assert [p for p, _ in flushed] == [0, 2]
        assert [len(b["a"]) for _, b in flushed] == [1, 2]

    def test_out_of_range_partition_rejected(self):
        packer = HashPacker(partitions=2, block_tuples=4)
        with pytest.raises(ValueError):
            packer.push(2, {"a": np.arange(1)})
        with pytest.raises(ValueError):
            packer.push(-1, {"a": np.arange(1)})


@settings(max_examples=50, deadline=None)
@given(
    batch_sizes=st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                         max_size=20),
    block_tuples=st.integers(min_value=1, max_value=32),
)
def test_pack_roundtrip_preserves_tuples(batch_sizes, block_tuples):
    """Blocks concatenated in order == input concatenated in order, and
    every emitted block except the flush remainder is exactly full."""
    packer = Packer(block_tuples=block_tuples)
    blocks = []
    expected = []
    counter = 0
    for size in batch_sizes:
        values = np.arange(counter, counter + size)
        counter += size
        expected.extend(values)
        blocks.extend(packer.push({"v": values}))
    full_blocks = len(blocks)
    blocks.extend(packer.flush())
    got = [v for block in blocks for v in block["v"]]
    assert got == expected
    for block in blocks[:full_blocks]:
        assert len(block["v"]) == block_tuples
    for block in blocks[full_blocks:]:
        assert 1 <= len(block["v"]) <= block_tuples


@settings(max_examples=50, deadline=None)
@given(
    tuples=st.lists(st.tuples(st.integers(min_value=0, max_value=7),
                              st.integers()), min_size=0, max_size=200),
    block_tuples=st.integers(min_value=1, max_value=16),
)
def test_hash_pack_invariant(tuples, block_tuples):
    """The hash-pack invariant: every emitted block is single-partition,
    and per-partition order is preserved."""
    packer = HashPacker(partitions=8, block_tuples=block_tuples)
    emitted = []
    for partition, value in tuples:
        emitted.extend(packer.push(partition, {"v": np.array([value])}))
    emitted.extend(packer.flush())
    per_partition: dict[int, list[int]] = {}
    for partition, block in emitted:
        per_partition.setdefault(partition, []).extend(block["v"])
    expected: dict[int, list[int]] = {}
    for partition, value in tuples:
        expected.setdefault(partition, []).append(value)
    assert per_partition == expected
