"""Unit tests for device providers and JIT code generation."""

import numpy as np
import pytest

from repro.algebra.expressions import col
from repro.algebra.logical import AggSpec
from repro.algebra.physical import (
    OpBuildSink,
    OpFilter,
    OpGroupAggSink,
    OpHashPackSink,
    OpPackSink,
    OpProbe,
    OpProject,
    OpReduceSink,
    OpUnpack,
    Stage,
)
from repro.hardware.topology import DeviceType
from repro.jit.codegen import CodegenError, PipelineCompiler
from repro.jit.pipeline import QueryState
from repro.jit.provider import CPUProvider, GPUProvider, provider_for


class TestProviders:
    def test_singletons(self):
        assert provider_for(DeviceType.CPU) is provider_for(DeviceType.CPU)
        assert isinstance(provider_for(DeviceType.GPU), GPUProvider)

    def test_thread_geometry_differs(self):
        cpu, gpu = CPUProvider(), GPUProvider()
        assert cpu.threads_in_worker() == "1"
        assert cpu.thread_id_in_worker() == "0"
        assert gpu.threads_in_worker() == "_threads_in_worker"
        namespace = gpu.runtime_namespace()
        assert namespace["_threads_in_worker"] == gpu.grid_size * gpu.block_size

    def test_accumulate_rendering_differs(self):
        cpu, gpu = CPUProvider(), GPUProvider()
        cpu_lines = cpu.emit_accumulate("acc_x", "value")
        gpu_lines = gpu.emit_accumulate("acc_x", "value")
        # CPU: the atomic is optimised out (plain +=)
        assert cpu_lines == ["state.acc_x += value"]
        # GPU: neighbourhood reduce then a worker-scoped atomic
        assert any("_neighborhood_reduce" in line for line in gpu_lines)
        assert any("_atomic_add" in line for line in gpu_lines)

    def test_min_max_accumulate(self):
        cpu = CPUProvider()
        assert "min(" in cpu.emit_accumulate("acc_m", "v", "min")[0]
        gpu = GPUProvider()
        assert "_atomic_min" in gpu.emit_accumulate("acc_m", "v", "min")[1]

    def test_compile_and_load_roundtrip(self):
        provider = CPUProvider()
        source = "def f(x):\n    return x + 1\n"
        code = provider.convert_to_machine_code(source, "test")
        fn = provider.load_machine_code(code, "f")
        assert fn(41) == 42

    def test_gpu_namespace_has_intrinsics(self):
        namespace = GPUProvider().runtime_namespace()
        for name in ("_neighborhood_reduce", "_atomic_add", "_atomic_min",
                     "_atomic_max", "np"):
            assert name in namespace

    def test_optimize_collapses_blank_lines(self):
        provider = CPUProvider()
        assert provider.optimize("a\n\n\n\nb\n") == "a\n\nb\n"


def _compile(ops, device=DeviceType.CPU, widths=None):
    stage = Stage("test-stage", device, ops=ops)
    return PipelineCompiler(widths=widths or {}).compile_stage(stage)


def _run(pipeline, columns, **state_kw):
    state = pipeline.new_state(QueryState(), "cpu", block_tuples=1 << 20)
    for key, value in state_kw.items():
        setattr(state, key, value)
    stats = state.stats
    outputs = pipeline.fn(state, columns, stats)
    return state, stats, outputs


class TestCodegen:
    def test_filter_reduce_pipeline(self):
        pipeline = _compile([
            OpUnpack(["a", "b"]),
            OpFilter(col("b") > 10),
            OpReduceSink([AggSpec("sum", col("a"), "total")]),
        ])
        cols = {"a": np.arange(100, dtype=np.int64),
                "b": np.arange(100, dtype=np.int64)}
        state, stats, outputs = _run(pipeline, cols)
        assert state.acc_total == float(np.arange(100)[np.arange(100) > 10].sum())
        assert outputs == []
        assert stats.tuples_in == 100
        assert stats.cpu_cycles > 0 and stats.gpu_ops > 0

    def test_source_differs_by_provider(self):
        def ops():
            return [
                OpUnpack(["a"]),
                OpReduceSink([AggSpec("sum", col("a"), "s")]),
            ]
        cpu = _compile(ops(), DeviceType.CPU)
        gpu = _compile(ops(), DeviceType.GPU)
        assert "state.acc_s +=" in cpu.source
        assert "_atomic_add" in gpu.source
        assert "_neighborhood_reduce" in gpu.source
        assert "PTX" in gpu.source and "x86" in cpu.source

    def test_gpu_pipeline_computes_same_result(self):
        def ops():
            return [
                OpUnpack(["a"]),
                OpFilter(col("a") % 1 == 0) if False else OpFilter(col("a") > 5),
                OpReduceSink([AggSpec("sum", col("a"), "s")]),
            ]
        cols = {"a": np.arange(50, dtype=np.int64)}
        cpu_pipeline = _compile(ops(), DeviceType.CPU)
        gpu_pipeline = _compile(ops(), DeviceType.GPU)
        cpu_state, _, _ = _run(cpu_pipeline, dict(cols))
        gpu_state = gpu_pipeline.new_state(QueryState(), "gpu:0", 1 << 20)
        gpu_pipeline.fn(gpu_state, dict(cols), gpu_state.stats)
        assert cpu_state.acc_s == gpu_state.acc_s

    def test_project_extends_tuples(self):
        pipeline = _compile([
            OpUnpack(["a", "b"]),
            OpProject([("c", col("a") * col("b"))]),
            OpReduceSink([AggSpec("sum", col("c"), "s")]),
        ])
        cols = {"a": np.array([2, 3], dtype=np.int64),
                "b": np.array([5, 7], dtype=np.int64)}
        state, _, _ = _run(pipeline, cols)
        assert state.acc_s == 31.0

    def test_count_and_minmax(self):
        pipeline = _compile([
            OpUnpack(["a"]),
            OpReduceSink([
                AggSpec("count", col("__count__"), "n"),
                AggSpec("min", col("a"), "lo"),
                AggSpec("max", col("a"), "hi"),
            ]),
        ])
        cols = {"a": np.array([5, -2, 9], dtype=np.int64)}
        state, _, _ = _run(pipeline, cols)
        assert (state.acc_n, state.acc_lo, state.acc_hi) == (3, -2.0, 9.0)

    def test_build_and_probe_via_state(self):
        build = _compile([
            OpUnpack(["dk", "g"]),
            OpBuildSink("ht0", "dk", ["g"]),
        ])
        probe = _compile([
            OpUnpack(["k", "v"]),
            OpProbe("ht0", "k", ["g"]),
            OpGroupAggSink(["g"], [AggSpec("sum", col("v"), "s")]),
        ])
        query = QueryState()
        query.create_hash_table("ht0", "cpu", 16, ["g"])
        build_state = build.new_state(query, "cpu", 1 << 20)
        build.fn(build_state, {"dk": np.arange(10, dtype=np.int64),
                               "g": (np.arange(10) % 2).astype(np.int64)},
                 build_state.stats)
        probe_state = probe.new_state(query, "cpu", 1 << 20)
        probe.fn(probe_state,
                 {"k": np.array([0, 1, 2, 99], dtype=np.int64),
                  "v": np.array([10, 20, 30, 40], dtype=np.int64)},
                 probe_state.stats)
        assert probe_state.groups == {(0,): {"s": 40.0}, (1,): {"s": 20.0}}
        # the missing key 99 was dropped; random accesses = 4 probe lookups
        # (charged pre-drop); the tiny group table stays cache-resident
        assert probe_state.stats.random_accesses == 4

    def test_spilled_flag_controls_random_bytes(self):
        probe = _compile([
            OpUnpack(["k"]),
            OpProbe("ht0", "k", []),
            OpReduceSink([AggSpec("count", col("__count__"), "n")]),
        ])
        for spilled, expect_random in ((True, True), (False, False)):
            query = QueryState()
            query.create_hash_table("ht0", "cpu", 16, [])
            query.hash_tables[("ht0", "cpu")].insert(np.arange(4, dtype=np.int64))
            query.spilled[("ht0", "cpu")] = spilled
            state = probe.new_state(query, "cpu", 1 << 20)
            probe.fn(state, {"k": np.arange(4, dtype=np.int64)}, state.stats)
            assert (state.stats.random_bytes > 0) is expect_random

    def test_pack_sink_emits_blocks(self):
        pipeline = _compile([
            OpUnpack(["a"]),
            OpFilter(col("a") >= 2),
            OpPackSink(["a"]),
        ])
        state = pipeline.new_state(QueryState(), "cpu", block_tuples=3)
        outputs = pipeline.fn(state, {"a": np.arange(10, dtype=np.int64)},
                              state.stats)
        assert [len(b["a"]) for b in outputs] == [3, 3]
        rest = state.packer.flush()
        assert [len(b["a"]) for b in rest] == [2]
        values = [v for block in outputs + rest for v in block["a"]]
        assert values == list(range(2, 10))

    def test_hash_pack_sink_partitions(self):
        pipeline = _compile([
            OpUnpack(["k", "v"]),
            OpHashPackSink("k", 4, ["k", "v"]),
        ])
        state = pipeline.new_state(QueryState(), "cpu", block_tuples=2)
        k = np.array([0, 1, 0, 1, 0], dtype=np.int64)
        outputs = pipeline.fn(state, {"k": k, "v": k * 10}, state.stats)
        outputs += state.hash_packer.flush()
        for partition, block in outputs:
            assert np.all(block["k"] % 4 == partition)
        total = sum(len(b["v"]) for _, b in outputs)
        assert total == 5

    def test_liveness_prunes_dead_columns(self):
        pipeline = _compile([
            OpUnpack(["a", "b", "unused"]),
            OpFilter(col("b") > 0),
            OpReduceSink([AggSpec("sum", col("a"), "s")]),
        ])
        # the dead column is bound once but never compressed
        assert pipeline.source.count("c_unused = cols['unused']") == 1
        assert "c_unused = c_unused[" not in pipeline.source

    def test_source_stage_not_compilable(self):
        from repro.algebra.physical import SegmentSource
        stage = Stage("seg", DeviceType.CPU, ops=[OpPackSink(["a"])],
                      source=SegmentSource("t", ["a"]))
        with pytest.raises(CodegenError, match="segmenter"):
            PipelineCompiler().compile_stage(stage)

    def test_stats_byte_accounting_uses_widths(self):
        pipeline = _compile(
            [OpUnpack(["a"]), OpReduceSink([AggSpec("sum", col("a"), "s")])],
            widths={"a": 4},
        )
        state, stats, _ = _run(pipeline, {"a": np.arange(10, dtype=np.int64)})
        assert stats.bytes_in == 40  # 10 tuples x declared 4-byte width
