"""Property-based query fuzzing: random plans vs the reference oracle.

Hypothesis builds random star-shaped plans (random fact filters, random
join subsets with filtered dimensions, random aggregates and group keys)
over randomly generated tables, and runs each through Proteus under a
random execution configuration.  Every result must match the independent
reference executor — across devices, degrees of parallelism and block
sizes.  This is the widest correctness net in the suite: it routinely
covers empty filter results, empty build sides, dropped probe keys,
single-block inputs, and partial flush blocks.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import ExecutionConfig, Proteus
from repro.algebra.expressions import col
from repro.algebra.logical import agg_count, agg_max, agg_min, agg_sum, scan
from repro.engine.reference import ReferenceExecutor
from repro.engine.scheduler import EngineServer
from repro.storage import Column, DataType, Table

ROWS = 3_000
DIM_ROWS = 60
SEGMENTS = ["alpha", "beta", "gamma", "delta"]


def _tables(seed: int):
    rng = np.random.default_rng(seed)
    fact = Table("fact", [
        Column.from_values("k1", DataType.INT32,
                           rng.integers(0, DIM_ROWS + 10, ROWS)),
        Column.from_values("k2", DataType.INT32,
                           rng.integers(0, DIM_ROWS, ROWS)),
        Column.from_values("v", DataType.INT64, rng.integers(-50, 200, ROWS)),
        Column.from_values("w", DataType.INT32, rng.integers(0, 40, ROWS)),
    ])
    dim1 = Table("dim1", [
        Column.from_values("d1k", DataType.INT32, np.arange(DIM_ROWS)),
        Column.from_values("g1", DataType.INT32,
                           rng.integers(0, 6, DIM_ROWS)),
        Column.from_strings("tag", [SEGMENTS[i % 4] for i in range(DIM_ROWS)]),
    ])
    dim2 = Table("dim2", [
        Column.from_values("d2k", DataType.INT32, np.arange(DIM_ROWS)),
        Column.from_values("g2", DataType.INT32,
                           rng.integers(0, 4, DIM_ROWS)),
    ])
    return {"fact": fact, "dim1": dim1, "dim2": dim2}


fact_filters = st.sampled_from([
    None,
    col("w") < 20,
    col("v").between(0, 100),
    (col("w") >= 5) & (col("v") > 0),
    col("w").isin([1, 2, 3, 39]),
    col("v") + col("w") > 60,
    col("w") > 100,  # empty result
])

dim1_filters = st.sampled_from([
    None,
    col("g1") < 3,
    col("tag") == "alpha",
    col("tag").between("alpha", "beta"),
    col("tag").isin(["gamma", "zeta"]),
    col("g1") > 99,  # empty build side
])

dim2_filters = st.sampled_from([None, col("g2") == 1, col("g2") >= 2])

aggregates = st.sampled_from([
    [agg_sum(col("v"), "s")],
    [agg_sum(col("v") * 2, "s"), agg_count("n")],
    [agg_min(col("v"), "lo"), agg_max(col("w"), "hi")],
    [agg_sum(col("v") - col("w"), "d"), agg_count("n")],
])

configs = st.sampled_from([
    ExecutionConfig.cpu_only(1, block_tuples=256),
    ExecutionConfig.cpu_only(7, block_tuples=512),
    ExecutionConfig.gpu_only([0], block_tuples=512),
    ExecutionConfig.gpu_only([0, 1], block_tuples=256),
    ExecutionConfig.hybrid(3, [1], block_tuples=512),
    ExecutionConfig.hybrid(8, [0, 1], block_tuples=1024),
    ExecutionConfig.bare_cpu(block_tuples=512),
    ExecutionConfig.bare_gpu(0, block_tuples=512),
])


def _build_plan(use_dim1, use_dim2, fact_pred, d1_pred, d2_pred, aggs,
                group_mode):
    plan = scan("fact", ["k1", "k2", "v", "w"])
    if fact_pred is not None:
        plan = plan.filter(fact_pred)
    group_keys = []
    if use_dim1:
        build = scan("dim1", ["d1k", "g1", "tag"])
        if d1_pred is not None:
            build = build.filter(d1_pred)
        plan = plan.join(build, probe_key="k1", build_key="d1k",
                         payload=["g1", "tag"])
        group_keys.append("tag" if group_mode % 2 else "g1")
    if use_dim2:
        build = scan("dim2", ["d2k", "g2"])
        if d2_pred is not None:
            build = build.filter(d2_pred)
        plan = plan.join(build, probe_key="k2", build_key="d2k",
                         payload=["g2"])
        group_keys.append("g2")
    if group_mode == 0 or not group_keys:
        return plan.reduce(aggs)
    return plan.groupby(group_keys, aggs)


def _normalise(rows):
    out = []
    for row in rows:
        cells = []
        for value in row:
            if value is None:
                cells.append(None)
            elif isinstance(value, float):
                cells.append(round(value, 6))
            else:
                cells.append(value)
        out.append(tuple(cells))
    return sorted(out, key=lambda r: tuple(str(c) for c in r))


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=7),
    use_dim1=st.booleans(),
    use_dim2=st.booleans(),
    fact_pred=fact_filters,
    d1_pred=dim1_filters,
    d2_pred=dim2_filters,
    aggs=aggregates,
    group_mode=st.integers(min_value=0, max_value=3),
    config=configs,
)
def test_random_plan_matches_reference(seed, use_dim1, use_dim2, fact_pred,
                                       d1_pred, d2_pred, aggs, group_mode,
                                       config):
    tables = _tables(seed)
    plan = _build_plan(use_dim1, use_dim2, fact_pred, d1_pred, d2_pred,
                       aggs, group_mode)
    engine = Proteus(segment_rows=1024)
    for table in tables.values():
        engine.register(table)
    result = engine.query(plan, config)
    expected = ReferenceExecutor(tables).execute(plan)
    assert _normalise(result.rows) == _normalise(expected)


# ---------------------------------------------------------------------------
# Concurrent fuzzing: random plan *batches* on one shared server
# ---------------------------------------------------------------------------

plan_params = st.tuples(
    st.booleans(),                       # use_dim1
    st.booleans(),                       # use_dim2
    fact_filters,
    dim1_filters,
    dim2_filters,
    aggregates,
    st.integers(min_value=0, max_value=3),  # group_mode
    configs,
)


def _run_batch(tables, batch, max_concurrent):
    """One shared server serving the whole random batch concurrently."""
    server = EngineServer(segment_rows=1024, max_concurrent=max_concurrent)
    for table in tables.values():
        server.register(table)
    sessions = []
    for index, params in enumerate(batch):
        (use_dim1, use_dim2, fact_pred, d1_pred, d2_pred, aggs,
         group_mode, config) = params
        plan = _build_plan(use_dim1, use_dim2, fact_pred, d1_pred, d2_pred,
                           aggs, group_mode)
        sessions.append(server.submit(plan, config, name=f"fz{index}"))
    report = server.run()  # raises SchedulerError on any deadlock
    return server, report, sessions


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=7),
    batch=st.lists(plan_params, min_size=2, max_size=4),
    max_concurrent=st.integers(min_value=2, max_value=4),
)
def test_concurrent_random_batches(seed, batch, max_concurrent):
    """Random concurrent batches: no deadlock, conserved accounting,
    reference-identical results, and bit-for-bit determinism."""
    tables = _tables(seed)
    server, report, sessions = _run_batch(tables, batch, max_concurrent)

    # every query completed (run() would raise on a deadlock; a failed
    # session here would indicate a concurrency bug, not a bad plan)
    assert [s.status for s in sessions] == ["done"] * len(batch)

    # conservation: admission budget drained, allocated == released, and
    # no operator-state allocation survived its query on any memory node
    server.check_conservation()

    # differential: each concurrent result matches the solo reference
    reference = ReferenceExecutor(tables)
    for session in sessions:
        expected = reference.execute(session.plan)
        assert _normalise(session.result.rows) == _normalise(expected)

    # determinism: replaying the identical batch on a fresh server gives
    # bit-identical rows and the exact same simulated makespan
    _, report2, sessions2 = _run_batch(tables, batch, max_concurrent)
    assert report2.makespan == report.makespan
    for a, b in zip(sessions, sessions2):
        assert a.result.rows == b.result.rows
        assert a.latency == b.latency
