"""Multi-tenant isolation tests: quotas, rate limits, weighted fairness.

Unit tests pin the tenancy primitives (token bucket in simulated time,
deficit-round-robin interleaving, quota capacity derivation); the
integration tests drive a shared :class:`EngineServer` and assert the
isolation contracts: a capped tenant's in-flight demand never exceeds
its quota slice (including across preemption and retries), a
rate-limited tenant is shed at the edge with a ``retry_after`` hint, and
admission service follows the configured weights under contention —
while every query still returns byte-identical rows.
"""

import pytest

from repro import EngineServer, ExecutionConfig, Proteus, ResourceBudget
from repro.engine.config import QoS
from repro.engine.faults import DeviceLossFault, FaultPlan, RetryPolicy
from repro.engine.reference import ReferenceExecutor
from repro.engine.scheduler import AdmissionError
from repro.engine.tenancy import (
    COMPUTE_DIMENSIONS,
    DeficitRoundRobin,
    MEMORY_DIMENSIONS,
    RateLimit,
    Tenant,
    TokenBucket,
    quota_capacities,
)
from repro.ssb import SSB_QUERY_IDS, generate_ssb, load_ssb, ssb_query


@pytest.fixture(scope="module")
def tables():
    return generate_ssb(scale_factor=0.005, seed=13)


@pytest.fixture(scope="module")
def reference(tables):
    ref = ReferenceExecutor(tables)
    return {qid: ref.execute(ssb_query(qid)) for qid in SSB_QUERY_IDS}


def _server(tables, **kwargs) -> EngineServer:
    server = EngineServer(segment_rows=2048, **kwargs)
    load_ssb(server.engine, tables=tables)
    return server


CPU4 = ExecutionConfig.cpu_only(4, block_tuples=4096)


class TestTenantConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            Tenant("")
        with pytest.raises(ValueError, match="weight"):
            Tenant("a", weight=0.0)
        with pytest.raises(ValueError, match="compute_quota"):
            Tenant("a", compute_quota=1.5)
        with pytest.raises(ValueError, match="memory_quota"):
            Tenant("a", memory_quota=0.0)
        with pytest.raises(ValueError, match="rate_qps"):
            RateLimit(rate_qps=0.0)
        with pytest.raises(ValueError, match="burst"):
            RateLimit(rate_qps=1.0, burst=0.5)
        assert not Tenant("a").capped
        assert Tenant("a", compute_quota=0.5).capped

    def test_quota_capacities_scale_only_quoted_dimensions(self):
        budget = ResourceBudget(cpu_cores=8, dram_bytes=1e9)
        tenant = Tenant("a", compute_quota=0.5)
        caps = quota_capacities(tenant, budget.capacity)
        # compute dims with finite server capacity scale; memory dims
        # (no memory_quota) and unlimited dims are absent -> unlimited
        assert caps == {"cpu_cores": 4.0}
        both = quota_capacities(
            Tenant("b", compute_quota=0.25, memory_quota=0.5), budget.capacity
        )
        assert both == {"cpu_cores": 2.0, "dram_bytes": 5e8}

    def test_dimension_split_is_exhaustive(self):
        from repro.engine.scheduler import DIMENSIONS

        assert sorted((*COMPUTE_DIMENSIONS, *MEMORY_DIMENSIONS)) == sorted(DIMENSIONS)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(RateLimit(rate_qps=2.0, burst=2.0), now=0.0)
        assert bucket.take(0.0) is None  # starts full: burst of 2
        assert bucket.take(0.0) is None
        retry = bucket.take(0.0)
        assert retry == pytest.approx(0.5)  # 1 token / 2 qps
        # after the hinted wait the next take succeeds
        assert bucket.take(0.5) is None
        assert bucket.take(0.5) == pytest.approx(0.5)

    def test_bank_is_capped_at_burst(self):
        bucket = TokenBucket(RateLimit(rate_qps=1.0, burst=1.0), now=0.0)
        assert bucket.take(0.0) is None
        # a long idle period banks at most `burst` tokens
        assert bucket.take(100.0) is None
        assert bucket.take(100.0) is not None


class TestDeficitRoundRobin:
    def test_weighted_interleave(self):
        drr = DeficitRoundRobin()
        out = drr.interleave(
            {"a": ["a0", "a1", "a2", "a3"], "b": ["b0", "b1"]},
            {"a": 2.0, "b": 1.0},
            ["a", "b"],
            lambda s: 0,
        )
        assert out == ["a0", "a1", "b0", "a2", "a3", "b1"]

    def test_priority_beats_weight_across_tenants(self):
        drr = DeficitRoundRobin()
        priorities = {"a0": 0, "a1": 0, "b0": 5, "b1": 0}
        out = drr.interleave(
            {"a": ["a0", "a1"], "b": ["b0", "b1"]},
            {"a": 10.0, "b": 1.0},
            ["a", "b"],
            priorities.__getitem__,
        )
        # b's interactive head jumps a's heavy weight; the remaining
        # batch traffic then follows the weights
        assert out[0] == "b0"

    def test_charge_keeps_deficits_bounded_and_drops_idle(self):
        drr = DeficitRoundRobin()
        for _ in range(100):
            drr.charge("a", {"a": 2.0, "b": 1.0})
        assert -3.0 <= drr.deficit("a") <= 3.0
        assert drr.deficit("b") >= 1.0 - 1e-9  # backlogged b banked credit
        drr.charge("a", {"a": 2.0})  # b went idle: its deficit is forfeit
        assert drr.deficit("b") == 0.0


class TestSubmissionEdge:
    def test_unknown_tenant_rejected(self, tables):
        server = _server(tables, tenants=[Tenant("acme")])
        with pytest.raises(ValueError, match="unknown tenant"):
            server.submit(ssb_query("Q1.1"), CPU4, tenant="ghost")

    def test_reserved_and_duplicate_names(self, tables):
        with pytest.raises(ValueError, match="reserved"):
            _server(tables, tenants=[Tenant("default")])
        with pytest.raises(ValueError, match="duplicate"):
            _server(tables, tenants=[Tenant("a"), Tenant("a")])

    def test_rate_limited_shed_carries_retry_after(self, tables):
        server = _server(
            tables,
            tenants=[Tenant("acme", rate_limit=RateLimit(rate_qps=2.0))],
        )
        first = server.submit(ssb_query("Q1.1"), CPU4, tenant="acme")
        second = server.submit(ssb_query("Q1.1"), CPU4, tenant="acme")
        assert first.status == "queued"
        assert second.status == "shed"
        assert second.shed_reason == "rate_limited"
        assert second.retry_after == pytest.approx(0.5)
        assert second.done.triggered
        report = server.run()
        assert first.status == "done"
        acme = report.tenants["acme"]
        assert acme["shed_rate_limited"] == 1
        assert acme["done"] == 1
        server.check_conservation()

    def test_queue_full_shed_reports_reason(self, tables):
        server = _server(tables, max_concurrent=1, max_queue_depth=2)
        kept = [server.submit(ssb_query("Q1.1"), CPU4) for _ in range(2)]
        dropped = server.submit(ssb_query("Q1.1"), CPU4)
        assert dropped.status == "shed"
        assert dropped.shed_reason == "queue_full"
        assert dropped.retry_after is None
        report = server.run()
        assert all(s.status == "done" for s in kept)
        assert report.tenants["default"]["shed_queue_full"] == 1

    def test_query_exceeding_tenant_quota_rejected(self, tables):
        budget = ResourceBudget(
            dram_bytes=1e15, hbm_bytes=1e12, pcie_bytes=1e15, cpu_cores=8, gpu_units=4
        )
        server = _server(
            tables,
            budget=budget,
            tenants=[Tenant("small", compute_quota=0.25)],  # 2 cores
        )
        with pytest.raises(AdmissionError, match="tenant 'small' quota"):
            server.submit(ssb_query("Q1.1"), CPU4, tenant="small")
        # the same query is fine untenanted
        server.submit(ssb_query("Q1.1"), CPU4)


class TestQuotaEnforcement:
    def test_saturating_tenant_capped_at_its_share(self, tables, reference):
        budget = ResourceBudget(
            dram_bytes=1e15, hbm_bytes=1e12, pcie_bytes=1e15, cpu_cores=16, gpu_units=4
        )
        server = _server(
            tables,
            max_concurrent=8,
            budget=budget,
            tenants=[Tenant("noisy", compute_quota=0.5)],  # 8 cores max
        )
        sessions = [
            server.submit(ssb_query("Q1.1"), CPU4, name=f"n{i}", tenant="noisy")
            for i in range(6)
        ]
        server.run()
        assert all(s.status == "done" for s in sessions)
        for session in sessions:
            assert sorted(session.result.rows) == sorted(reference["Q1.1"])
        noisy = server.tenant_states["noisy"].budget
        # never more than two 4-core queries of this tenant in flight
        assert noisy.peak["cpu_cores"] <= 8.0
        assert budget.peak["cpu_cores"] <= 16.0
        server.check_conservation()

    def test_quota_shares_conserved_across_preemption(self, tables):
        budget = ResourceBudget(
            dram_bytes=1e15, hbm_bytes=1e12, pcie_bytes=1e15, cpu_cores=8, gpu_units=4
        )
        server = _server(
            tables,
            max_concurrent=4,
            budget=budget,
            preemption=True,
            tenants=[
                Tenant("lo", compute_quota=0.75, memory_quota=0.9),
                Tenant("hi", compute_quota=0.75, memory_quota=0.9),
            ],
        )
        low = [
            server.submit(
                ssb_query("Q4.1"),
                CPU4,
                name=f"lo{i}",
                tenant="lo",
                qos=QoS(priority=0, label="batch"),
            )
            for i in range(2)
        ]
        hi = server.submit(
            ssb_query("Q1.1"),
            ExecutionConfig.cpu_only(6, block_tuples=4096),
            name="hi",
            tenant="hi",
            qos=QoS(priority=5, label="interactive"),
        )
        report = server.run()
        assert all(s.status == "done" for s in (*low, hi))
        for name, state in (("lo", None), ("hi", None)):
            tenant_budget = server.tenant_states[name].budget
            for dim in ("cpu_cores", "dram_bytes"):
                assert tenant_budget.peak[dim] <= tenant_budget.capacity[dim] + 1e-6
        # check_conservation asserts the per-tenant mirrors drained too
        server.check_conservation()
        assert report.preemptions >= 0  # preemption path exercised or not,
        # the mirrors must balance either way

    def test_quota_shares_conserved_across_retries(self, tables):
        budget = ResourceBudget(
            dram_bytes=1e15, hbm_bytes=1e12, pcie_bytes=1e15, cpu_cores=12, gpu_units=4
        )
        server = _server(
            tables,
            max_concurrent=4,
            budget=budget,
            tenants=[Tenant("acme", compute_quota=0.9, memory_quota=0.9)],
            fault_plan=FaultPlan(
                device_losses=(DeviceLossFault(gpu_id=0, at_seconds=0.001),)
            ),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        session = server.submit(
            ssb_query("Q1.1"),
            ExecutionConfig.hybrid(4, [0, 1], block_tuples=4096),
            name="survivor",
            tenant="acme",
        )
        server.run()
        assert session.status == "done"
        assert session.retries >= 1
        server.check_conservation()
        acme = server.tenant_states["acme"].budget
        for dim in acme.capacity:
            assert acme.in_use[dim] == 0.0

    def test_tenant_quota_block_never_preempts_other_tenants(self, tables):
        budget = ResourceBudget(
            dram_bytes=1e15, hbm_bytes=1e12, pcie_bytes=1e15, cpu_cores=16, gpu_units=4
        )
        server = _server(
            tables,
            max_concurrent=8,
            budget=budget,
            preemption=True,
            tenants=[
                # greedy's own quota (4 cores) blocks its second query;
                # victim has plenty of global headroom around it
                Tenant("greedy", compute_quota=0.25),
                Tenant("victim"),
            ],
        )
        bystander = server.submit(
            ssb_query("Q4.1"),
            CPU4,
            name="bystander",
            tenant="victim",
            qos=QoS(priority=0, label="batch"),
        )
        blocked = [
            server.submit(
                ssb_query("Q1.1"),
                CPU4,
                name=f"g{i}",
                tenant="greedy",
                qos=QoS(priority=5, label="interactive"),
            )
            for i in range(2)
        ]
        server.run()
        assert all(s.status == "done" for s in (bystander, *blocked))
        # the high-priority tenant was quota-blocked, not budget-blocked:
        # the other tenant's query must not have been paused for it
        assert bystander.preemptions == 0
        server.check_conservation()


class TestWeightedFairness:
    def test_drr_serves_backlogged_tenants_by_weight(self, tables):
        server = _server(
            tables,
            max_concurrent=1,
            tenants=[Tenant("heavy", weight=2.0), Tenant("light", weight=1.0)],
        )
        sessions = []
        for i in range(6):
            sessions.append(
                server.submit(ssb_query("Q1.1"), CPU4, name=f"h{i}", tenant="heavy")
            )
            sessions.append(
                server.submit(ssb_query("Q1.1"), CPU4, name=f"l{i}", tenant="light")
            )
        server.run()
        assert all(s.status == "done" for s in sessions)
        admitted = sorted(sessions, key=lambda s: s.admit_time)
        first_six = [s.tenant for s in admitted[:6]]
        assert first_six.count("heavy") == 4
        assert first_six.count("light") == 2
        server.check_conservation()

    def test_priority_still_strict_across_tenants(self, tables):
        server = _server(
            tables,
            max_concurrent=1,
            tenants=[Tenant("a", weight=10.0), Tenant("b", weight=1.0)],
        )
        batch = [
            server.submit(ssb_query("Q1.1"), CPU4, name=f"a{i}", tenant="a")
            for i in range(3)
        ]
        urgent = server.submit(
            ssb_query("Q1.1"),
            CPU4,
            name="urgent",
            tenant="b",
            qos=QoS(priority=5, label="interactive"),
        )
        server.run()
        assert all(s.status == "done" for s in (*batch, urgent))
        # tenant b's interactive query beat tenant a's remaining batch
        # work despite a's 10x weight
        later_batch = [s for s in batch if s.admit_time > 0.0]
        assert all(urgent.admit_time <= s.admit_time for s in later_batch)
        server.check_conservation()
