"""Tests for the reference executor and execution configurations."""

import pytest

from repro import ExecutionConfig
from repro.algebra.expressions import col
from repro.algebra.logical import OrderSpec, agg_count, agg_max, agg_min, agg_sum, scan
from repro.engine.reference import ReferenceExecutor
from repro.storage import Column, DataType, Table


@pytest.fixture
def tables():
    fact = Table("fact", [
        Column.from_values("k", DataType.INT32, [1, 2, 3, 1, 2, 9]),
        Column.from_values("v", DataType.INT64, [10, 20, 30, 40, 50, 60]),
    ])
    dim = Table("dim", [
        Column.from_values("dk", DataType.INT32, [1, 2, 3]),
        Column.from_strings("name", ["one", "two", "three"]),
    ])
    return {"fact": fact, "dim": dim}


class TestReferenceExecutor:
    def test_scalar_aggregates(self, tables):
        plan = scan("fact", ["v"]).reduce([
            agg_sum(col("v"), "s"), agg_count("n"),
            agg_min(col("v"), "lo"), agg_max(col("v"), "hi"),
        ])
        values = ReferenceExecutor(tables).scalar(plan)
        assert values == {"s": 210.0, "n": 6, "lo": 10.0, "hi": 60.0}

    def test_scalar_on_empty_input(self, tables):
        plan = (scan("fact", ["v"]).filter(col("v") > 999)
                .reduce([agg_sum(col("v"), "s"), agg_count("n"),
                         agg_min(col("v"), "lo")]))
        values = ReferenceExecutor(tables).scalar(plan)
        assert values == {"s": 0.0, "n": 0, "lo": None}

    def test_join_drops_misses_and_decodes(self, tables):
        plan = (scan("fact", ["k", "v"])
                .join(scan("dim", ["dk", "name"]), probe_key="k",
                      build_key="dk", payload=["name"]))
        rows = ReferenceExecutor(tables).execute(plan)
        # key 9 has no dimension match
        assert len(rows) == 5
        assert (1, 10, "one") in rows

    def test_join_duplicate_build_keys_rejected(self, tables):
        dup = Table("dup", [Column.from_values("dk", DataType.INT32, [1, 1])])
        executor = ReferenceExecutor({**tables, "dup": dup})
        plan = scan("fact", ["k", "v"]).join(scan("dup", ["dk"]),
                                             probe_key="k", build_key="dk",
                                             payload=[])
        with pytest.raises(ValueError, match="duplicate build keys"):
            executor.execute(plan)

    def test_group_by_with_order_and_limit(self, tables):
        plan = (scan("fact", ["k", "v"])
                .groupby(["k"], [agg_sum(col("v"), "s")])
                .order_by(OrderSpec("s", ascending=False))
                .take(2))
        rows = ReferenceExecutor(tables).execute(plan)
        assert rows == [(2, 70.0), (9, 60.0)]

    def test_scalar_requires_reduce_root(self, tables):
        with pytest.raises(TypeError):
            ReferenceExecutor(tables).scalar(scan("fact", ["v"]))


class TestExecutionConfig:
    def test_constructors(self):
        assert ExecutionConfig.cpu_only(8).devices[0].value == "cpu"
        assert ExecutionConfig.gpu_only([0]).uses_gpu
        hybrid = ExecutionConfig.hybrid(4, [0, 1])
        assert hybrid.is_hybrid
        assert "4 CPU worker(s)" in hybrid.describe()

    def test_no_compute_units_rejected(self):
        with pytest.raises(ValueError, match="no compute units"):
            ExecutionConfig(cpu_workers=0, gpu_ids=())

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ExecutionConfig(cpu_workers=-1, gpu_ids=(0,))

    def test_bare_requires_exactly_one_unit(self):
        with pytest.raises(ValueError, match="exactly one"):
            ExecutionConfig(cpu_workers=2, bare=True)
        with pytest.raises(ValueError, match="exactly one"):
            ExecutionConfig(cpu_workers=1, gpu_ids=(0,), bare=True)
        assert ExecutionConfig.bare_cpu().bare
        assert ExecutionConfig.bare_gpu(1).gpu_ids == (1,)

    def test_block_tuples_validated(self):
        with pytest.raises(ValueError):
            ExecutionConfig.cpu_only(1, block_tuples=0)

    def test_frozen(self):
        config = ExecutionConfig.cpu_only(2)
        with pytest.raises(Exception):
            config.cpu_workers = 5
